//! Generic [`ConcurrentMap`] conformance suite.
//!
//! Every table type exported from `growt_repro::prelude` is driven through
//! the same checks via one generic harness, so that all implementations are
//! exercised through the single trait surface the benchmarks use rather
//! than per-crate ad-hoc smoke tests:
//!
//! * a single-threaded insert/find/update/upsert/erase round-trip,
//! * a multi-threaded distinct-key insert + find smoke test,
//! * for tables advertising atomic updates (Table 1), a concurrent
//!   insert-or-increment atomicity check,
//! * a batch-semantics suite: every `*_batch` operation must produce
//!   exactly the results of the per-op loop (including duplicate keys
//!   inside one batch), and batches racing a live migration must neither
//!   lose nor duplicate elements.
//!
//! Capability flags steer the variations: sequential reference tables run
//! the concurrent sections with one thread, and the atomicity check only
//! runs where `Capabilities::atomic_updates` is claimed.

use growt_repro::prelude::*;

/// Smallest key used by the suite: keys 0/1 (and a small reserved prefix)
/// are sentinel values in several open-addressing tables.
const BASE: u64 = 32;

fn concurrency_for<M: ConcurrentMap>(requested: usize) -> usize {
    // The sequential reference tables use no synchronization at all; the
    // whole harness (paper §8.1.4) only ever drives them single-threaded.
    if M::table_name().starts_with("sequential") {
        1
    } else {
        requested
    }
}

/// Single-threaded round-trip over the full `MapHandle` surface.
fn round_trip<M: ConcurrentMap>() {
    let table = M::with_capacity(2048);
    let mut h = table.handle();
    let name = M::table_name();

    // Fresh inserts succeed exactly once.
    for k in BASE..BASE + 512 {
        assert!(h.insert(k, k + 1), "{name}: first insert of {k}");
    }
    for k in BASE..BASE + 512 {
        assert!(!h.insert(k, 0), "{name}: duplicate insert of {k}");
        assert_eq!(h.find(k), Some(k + 1), "{name}: find({k})");
    }
    assert_eq!(h.find(BASE + 100_000), None, "{name}: absent key");

    // update / update_overwrite only touch existing elements.
    assert!(
        h.update(BASE, 5, |cur, d| cur + d),
        "{name}: update present"
    );
    assert_eq!(h.find(BASE), Some(BASE + 6));
    assert!(
        !h.update(BASE + 100_000, 5, |cur, d| cur + d),
        "{name}: update absent"
    );
    assert!(h.update_overwrite(BASE, 7), "{name}: overwrite present");
    assert_eq!(h.find(BASE), Some(7));

    // insert_or_update inserts when absent, updates when present.
    assert!(
        h.insert_or_update(BASE + 1000, 3, |c, d| c + d).inserted(),
        "{name}: upsert absent"
    );
    assert!(
        !h.insert_or_update(BASE + 1000, 4, |c, d| c + d).inserted(),
        "{name}: upsert present"
    );
    assert_eq!(h.find(BASE + 1000), Some(7), "{name}: upsert result");

    // insert_or_increment is the aggregation primitive of Fig. 5.
    assert!(h.insert_or_increment(BASE + 2000, 2).inserted());
    assert!(!h.insert_or_increment(BASE + 2000, 40).inserted());
    assert_eq!(h.find(BASE + 2000), Some(42), "{name}: increment result");

    // erase removes exactly once; erased keys can be re-inserted.
    assert!(h.erase(BASE + 1), "{name}: erase present");
    assert!(!h.erase(BASE + 1), "{name}: erase absent");
    assert_eq!(h.find(BASE + 1), None, "{name}: erased key gone");
    assert!(h.insert(BASE + 1, 99), "{name}: re-insert after erase");
    assert_eq!(h.find(BASE + 1), Some(99));

    h.quiesce();
}

/// Multi-threaded smoke: distinct-key inserts from several threads, then
/// concurrent finds; nothing may be lost.
fn concurrent_insert_find<M: ConcurrentMap>() {
    let threads = concurrency_for::<M>(4);
    let per_thread = 4_000u64;
    let total = per_thread * threads as u64;
    let table = M::with_capacity(total as usize);
    let name = M::table_name();

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                for i in 0..per_thread {
                    let k = BASE + t * per_thread + i;
                    assert!(h.insert(k, k), "{name}: parallel insert {k}");
                    if i % 1024 == 0 {
                        h.quiesce();
                    }
                }
                h.quiesce();
            });
        }
    });

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                for i in 0..per_thread {
                    let k = BASE + t * per_thread + i;
                    assert_eq!(h.find(k), Some(k), "{name}: parallel find {k}");
                }
                h.quiesce();
            });
        }
    });
}

/// Concurrent insert-or-increment on a small key universe: the sum of all
/// counters must equal the number of operations (no lost increments).
/// Only meaningful where the table claims atomic updates (Table 1).
fn concurrent_increment_atomicity<M: ConcurrentMap>() {
    if !M::capabilities().atomic_updates {
        return;
    }
    let threads = concurrency_for::<M>(4);
    let per_thread = 10_000u64;
    let universe = 97u64;
    let table = M::with_capacity(4 * universe as usize);
    let name = M::table_name();

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                for i in 0..per_thread {
                    h.insert_or_increment(BASE + (i * 31 + t) % universe, 1);
                    if i % 1024 == 0 {
                        h.quiesce();
                    }
                }
                h.quiesce();
            });
        }
    });

    let mut h = table.handle();
    let total: u64 = (0..universe).map(|k| h.find(BASE + k).unwrap_or(0)).sum();
    assert_eq!(
        total,
        per_thread * threads as u64,
        "{name}: lost increments under concurrent aggregation"
    );
}

/// Batch calls must be observably identical to the per-op loop: drive one
/// table with the batch API and a twin with single operations, comparing
/// every return value and the final contents — with duplicate keys inside
/// one batch, absent keys, and uneven batch lengths.
fn batch_matches_per_op<M: ConcurrentMap>() {
    let batched = M::with_capacity(4096);
    let looped = M::with_capacity(4096);
    let mut hb = batched.handle();
    let mut hl = looped.handle();
    let name = M::table_name();

    // 600 distinct keys, 300 of them repeated inside the same batch with a
    // different value: only the first occurrence of a key may insert.
    let mut elems: Vec<(u64, u64)> = (0..600u64).map(|i| (BASE + i, i + 1)).collect();
    elems.extend((0..300u64).map(|i| (BASE + 2 * i, 7_000 + i)));
    let by_batch = hb.insert_batch(&elems);
    let mut by_loop = 0;
    for &(k, v) in &elems {
        if hl.insert(k, v) {
            by_loop += 1;
        }
    }
    assert_eq!(by_batch, by_loop, "{name}: insert_batch count");

    // Lookups over present and absent keys.
    let keys: Vec<u64> = (0..700u64).map(|i| BASE + i).collect();
    let mut out = vec![None; keys.len()];
    hb.find_batch(&keys, &mut out);
    for (&k, &f) in keys.iter().zip(out.iter()) {
        assert_eq!(f, hl.find(k), "{name}: find_batch({k})");
    }

    // Updates, with keys repeated inside the batch (applied in order) and
    // absent keys interleaved.
    let mut updates: Vec<(u64, u64)> = (0..650u64).map(|i| (BASE + i, 10)).collect();
    updates.extend((0..100u64).map(|i| (BASE + 3 * i, 1)));
    let ub = hb.update_batch(&updates, |c, d| c.wrapping_add(d));
    let mut ul = 0;
    for &(k, d) in &updates {
        if hl.update(k, d, |c, d| c.wrapping_add(d)) {
            ul += 1;
        }
    }
    assert_eq!(ub, ul, "{name}: update_batch count");

    // Deletions, with duplicates (second occurrence finds nothing) and
    // absent keys.
    let mut erase: Vec<u64> = (0..400u64).map(|i| BASE + i).collect();
    erase.extend((0..100u64).map(|i| BASE + i));
    erase.extend((0..50u64).map(|i| BASE + 5_000 + i));
    let eb = hb.erase_batch(&erase);
    let mut el = 0;
    for &k in &erase {
        if hl.erase(k) {
            el += 1;
        }
    }
    assert_eq!(eb, el, "{name}: erase_batch count");

    // Final contents must coincide.
    let mut out = vec![None; keys.len()];
    hb.find_batch(&keys, &mut out);
    for (&k, &f) in keys.iter().zip(out.iter()) {
        assert_eq!(f, hl.find(k), "{name}: final contents at {k}");
    }
    hb.quiesce();
    hl.quiesce();
}

/// Concurrent batches racing live migrations: growing tables start tiny so
/// the batched inserts trigger (and re-batch across) several migrations;
/// non-growing tables still exercise concurrent batch execution.  Nothing
/// may be lost or duplicated, and `find_batch` must see every element.
fn batches_race_migration<M: ConcurrentMap>() {
    let threads = concurrency_for::<M>(4);
    let per_thread = 5_000u64;
    let total = per_thread * threads as u64;
    let capacity = if M::capabilities().growing == GrowthSupport::Full {
        64
    } else {
        total as usize
    };
    let table = M::with_capacity(capacity);
    let name = M::table_name();

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                let elems: Vec<(u64, u64)> = (0..per_thread)
                    .map(|i| {
                        let k = BASE + t * per_thread + i;
                        (k, k)
                    })
                    .collect();
                let mut inserted = 0;
                // 37 is deliberately coprime to the pipeline width so the
                // batches land unaligned.
                for chunk in elems.chunks(37) {
                    inserted += h.insert_batch(chunk);
                    h.quiesce();
                }
                assert_eq!(inserted, per_thread as usize, "{name}: lost batch inserts");
            });
        }
    });

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                let keys: Vec<u64> = (0..per_thread).map(|i| BASE + t * per_thread + i).collect();
                let mut out = vec![None; keys.len()];
                h.find_batch(&keys, &mut out);
                for (&k, &f) in keys.iter().zip(out.iter()) {
                    assert_eq!(f, Some(k), "{name}: find_batch({k}) after race");
                }
                h.quiesce();
            });
        }
    });
}

macro_rules! conformance {
    ($($module:ident => $table:ty),+ $(,)?) => {
        $(
            mod $module {
                use super::*;

                #[test]
                fn round_trip() {
                    super::round_trip::<$table>();
                }

                #[test]
                fn concurrent_insert_find() {
                    super::concurrent_insert_find::<$table>();
                }

                #[test]
                fn concurrent_increment_atomicity() {
                    super::concurrent_increment_atomicity::<$table>();
                }

                #[test]
                fn batch_matches_per_op() {
                    super::batch_matches_per_op::<$table>();
                }

                #[test]
                fn batches_race_migration() {
                    super::batches_race_migration::<$table>();
                }
            }
        )+
    };
}

/// Budgeted-help stress: a `uaGrow-k1` table (every drafted helper copies
/// at most one block, DESIGN.md §13) driven from a tiny capacity through
/// several migrations must stay exact — nothing lost, nothing duplicated,
/// and the migrations must actually have happened (otherwise the budget
/// was never exercised).
#[test]
fn budgeted_help_stays_exact_across_migrations() {
    let threads = 4u64;
    let per_thread = 8_000u64;
    let table = UaGrowK1::with_capacity(64);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                for i in 0..per_thread {
                    let k = BASE + t * per_thread + i;
                    assert!(h.insert(k, k * 2), "budgeted insert {k}");
                }
            });
        }
    });
    assert!(
        table.inner().migrations_completed() >= 2,
        "budgeted-help stress never crossed two migrations"
    );
    let mut h = table.handle();
    for k in BASE..BASE + threads * per_thread {
        assert_eq!(h.find(k), Some(k * 2), "budgeted find {k}");
    }
}

conformance! {
    // growt-core variants (§7).
    folklore => Folklore,
    folklore_crc => FolkloreCrc,
    folklore_simd => FolkloreSimd,
    tsx_folklore => TsxFolklore,
    ua_grow => UaGrow,
    ua_grow_crc => UaGrowCrc,
    ua_grow_simd => UaGrowSimd,
    ua_grow_k1 => UaGrowK1,
    us_grow => UsGrow,
    pa_grow => PaGrow,
    ps_grow => PsGrow,
    // Sequential references (§8.1.4).
    seq_table => SeqTable,
    seq_growing_table => SeqGrowingTable,
    // Competitor families (§8.1).
    cuckoo => Cuckoo,
    folly_style => FollyStyle,
    hopscotch => Hopscotch,
    junction_leapfrog => JunctionLeapfrog,
    junction_linear => JunctionLinear,
    lea_hash => LeaHash,
    phase_concurrent => PhaseConcurrent,
    rcu_qsbr => RcuQsbrTable,
    rcu => RcuTable,
    tbb_hash_map => TbbHashMap,
    tbb_unordered_map => TbbUnorderedMap,
}
