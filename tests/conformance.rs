//! Generic [`ConcurrentMap`] conformance suite.
//!
//! Every table type exported from `growt_repro::prelude` is driven through
//! the same checks via one generic harness, so that all implementations are
//! exercised through the single trait surface the benchmarks use rather
//! than per-crate ad-hoc smoke tests:
//!
//! * a single-threaded insert/find/update/upsert/erase round-trip,
//! * a multi-threaded distinct-key insert + find smoke test,
//! * for tables advertising atomic updates (Table 1), a concurrent
//!   insert-or-increment atomicity check.
//!
//! Capability flags steer the variations: sequential reference tables run
//! the concurrent sections with one thread, and the atomicity check only
//! runs where `Capabilities::atomic_updates` is claimed.

use growt_repro::prelude::*;

/// Smallest key used by the suite: keys 0/1 (and a small reserved prefix)
/// are sentinel values in several open-addressing tables.
const BASE: u64 = 32;

fn concurrency_for<M: ConcurrentMap>(requested: usize) -> usize {
    // The sequential reference tables use no synchronization at all; the
    // whole harness (paper §8.1.4) only ever drives them single-threaded.
    if M::table_name().starts_with("sequential") {
        1
    } else {
        requested
    }
}

/// Single-threaded round-trip over the full `MapHandle` surface.
fn round_trip<M: ConcurrentMap>() {
    let table = M::with_capacity(2048);
    let mut h = table.handle();
    let name = M::table_name();

    // Fresh inserts succeed exactly once.
    for k in BASE..BASE + 512 {
        assert!(h.insert(k, k + 1), "{name}: first insert of {k}");
    }
    for k in BASE..BASE + 512 {
        assert!(!h.insert(k, 0), "{name}: duplicate insert of {k}");
        assert_eq!(h.find(k), Some(k + 1), "{name}: find({k})");
    }
    assert_eq!(h.find(BASE + 100_000), None, "{name}: absent key");

    // update / update_overwrite only touch existing elements.
    assert!(
        h.update(BASE, 5, |cur, d| cur + d),
        "{name}: update present"
    );
    assert_eq!(h.find(BASE), Some(BASE + 6));
    assert!(
        !h.update(BASE + 100_000, 5, |cur, d| cur + d),
        "{name}: update absent"
    );
    assert!(h.update_overwrite(BASE, 7), "{name}: overwrite present");
    assert_eq!(h.find(BASE), Some(7));

    // insert_or_update inserts when absent, updates when present.
    assert!(
        h.insert_or_update(BASE + 1000, 3, |c, d| c + d).inserted(),
        "{name}: upsert absent"
    );
    assert!(
        !h.insert_or_update(BASE + 1000, 4, |c, d| c + d).inserted(),
        "{name}: upsert present"
    );
    assert_eq!(h.find(BASE + 1000), Some(7), "{name}: upsert result");

    // insert_or_increment is the aggregation primitive of Fig. 5.
    assert!(h.insert_or_increment(BASE + 2000, 2).inserted());
    assert!(!h.insert_or_increment(BASE + 2000, 40).inserted());
    assert_eq!(h.find(BASE + 2000), Some(42), "{name}: increment result");

    // erase removes exactly once; erased keys can be re-inserted.
    assert!(h.erase(BASE + 1), "{name}: erase present");
    assert!(!h.erase(BASE + 1), "{name}: erase absent");
    assert_eq!(h.find(BASE + 1), None, "{name}: erased key gone");
    assert!(h.insert(BASE + 1, 99), "{name}: re-insert after erase");
    assert_eq!(h.find(BASE + 1), Some(99));

    h.quiesce();
}

/// Multi-threaded smoke: distinct-key inserts from several threads, then
/// concurrent finds; nothing may be lost.
fn concurrent_insert_find<M: ConcurrentMap>() {
    let threads = concurrency_for::<M>(4);
    let per_thread = 4_000u64;
    let total = per_thread * threads as u64;
    let table = M::with_capacity(total as usize);
    let name = M::table_name();

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                for i in 0..per_thread {
                    let k = BASE + t * per_thread + i;
                    assert!(h.insert(k, k), "{name}: parallel insert {k}");
                    if i % 1024 == 0 {
                        h.quiesce();
                    }
                }
                h.quiesce();
            });
        }
    });

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                for i in 0..per_thread {
                    let k = BASE + t * per_thread + i;
                    assert_eq!(h.find(k), Some(k), "{name}: parallel find {k}");
                }
                h.quiesce();
            });
        }
    });
}

/// Concurrent insert-or-increment on a small key universe: the sum of all
/// counters must equal the number of operations (no lost increments).
/// Only meaningful where the table claims atomic updates (Table 1).
fn concurrent_increment_atomicity<M: ConcurrentMap>() {
    if !M::capabilities().atomic_updates {
        return;
    }
    let threads = concurrency_for::<M>(4);
    let per_thread = 10_000u64;
    let universe = 97u64;
    let table = M::with_capacity(4 * universe as usize);
    let name = M::table_name();

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let table = &table;
            scope.spawn(move || {
                let mut h = table.handle();
                for i in 0..per_thread {
                    h.insert_or_increment(BASE + (i * 31 + t) % universe, 1);
                    if i % 1024 == 0 {
                        h.quiesce();
                    }
                }
                h.quiesce();
            });
        }
    });

    let mut h = table.handle();
    let total: u64 = (0..universe).map(|k| h.find(BASE + k).unwrap_or(0)).sum();
    assert_eq!(
        total,
        per_thread * threads as u64,
        "{name}: lost increments under concurrent aggregation"
    );
}

macro_rules! conformance {
    ($($module:ident => $table:ty),+ $(,)?) => {
        $(
            mod $module {
                use super::*;

                #[test]
                fn round_trip() {
                    super::round_trip::<$table>();
                }

                #[test]
                fn concurrent_insert_find() {
                    super::concurrent_insert_find::<$table>();
                }

                #[test]
                fn concurrent_increment_atomicity() {
                    super::concurrent_increment_atomicity::<$table>();
                }
            }
        )+
    };
}

conformance! {
    // growt-core variants (§7).
    folklore => Folklore,
    tsx_folklore => TsxFolklore,
    ua_grow => UaGrow,
    us_grow => UsGrow,
    pa_grow => PaGrow,
    ps_grow => PsGrow,
    // Sequential references (§8.1.4).
    seq_table => SeqTable,
    seq_growing_table => SeqGrowingTable,
    // Competitor families (§8.1).
    cuckoo => Cuckoo,
    folly_style => FollyStyle,
    hopscotch => Hopscotch,
    junction_leapfrog => JunctionLeapfrog,
    junction_linear => JunctionLinear,
    lea_hash => LeaHash,
    phase_concurrent => PhaseConcurrent,
    rcu_qsbr => RcuQsbrTable,
    rcu => RcuTable,
    tbb_hash_map => TbbHashMap,
    tbb_unordered_map => TbbUnorderedMap,
}
