//! Generic [`GenericMap`] conformance suite (DESIGN.md §14).
//!
//! The typed facade `GrowMap<K, V>` is driven through one harness at
//! three representative instantiations covering the packing matrix:
//!
//! * `GrowMap<u64, u64>` — inline key, inline value (the word-table
//!   configuration: probes and publishes exactly like `GrowingTable`);
//! * `GrowMap<String, u64>` — packed-reference key, inline value (the
//!   string-table configuration);
//! * `GrowMap<u64, [u64; 4]>` — inline key, pointer-packed value (the
//!   configuration only the generic map supports).
//!
//! Each instantiation runs the same checks through the `GenericMap` /
//! `GenericMapHandle` trait surface: a full single-threaded round-trip,
//! concurrent distinct-key inserts across migrations, concurrent
//! insert-or-update atomicity, batch operations matching the per-op loop
//! exactly (including duplicates inside one batch), and batches racing a
//! live migration.

use growt_repro::prelude::*;

/// Smallest key index used by the suite (inline `u64` keys reserve the
/// encodings below 2; a margin keeps the suite honest about it).
const BASE: u64 = 32;

/// One instantiation of the conformance harness: how to make keys and
/// values from a test index, how to bump a value, and how to project a
/// value back to a number for exactness sums.
trait Fixture {
    type M: GenericMap<Self::K, Self::V>;
    type K: Clone + Send + Sync;
    type V: Clone + PartialEq + std::fmt::Debug + Send + Sync;

    fn key(i: u64) -> Self::K;
    fn val(i: u64) -> Self::V;
    /// A unit increment, used by the atomicity checks.
    fn bump(v: &Self::V) -> Self::V;
    fn weight(v: &Self::V) -> u64;
    /// Migration count of the concrete map (not part of the trait
    /// surface; exposed per fixture for the racing checks).
    fn migrations(map: &Self::M) -> u64;
    fn size_exact(map: &Self::M) -> usize;
}

struct InlineInline;
impl Fixture for InlineInline {
    type M = GrowMap<u64, u64>;
    type K = u64;
    type V = u64;

    fn key(i: u64) -> u64 {
        BASE + i
    }
    fn val(i: u64) -> u64 {
        i * 2 + 1
    }
    fn bump(v: &u64) -> u64 {
        v + 1
    }
    fn weight(v: &u64) -> u64 {
        *v
    }
    fn migrations(map: &Self::M) -> u64 {
        map.migrations_completed()
    }
    fn size_exact(map: &Self::M) -> usize {
        map.size_exact_quiescent()
    }
}

struct BoxedKey;
impl Fixture for BoxedKey {
    type M = GrowMap<String, u64>;
    type K = String;
    type V = u64;

    fn key(i: u64) -> String {
        format!("generic-key-{i}")
    }
    fn val(i: u64) -> u64 {
        i * 2 + 1
    }
    fn bump(v: &u64) -> u64 {
        v + 1
    }
    fn weight(v: &u64) -> u64 {
        *v
    }
    fn migrations(map: &Self::M) -> u64 {
        map.migrations_completed()
    }
    fn size_exact(map: &Self::M) -> usize {
        map.size_exact_quiescent()
    }
}

struct BoxedValue;
impl Fixture for BoxedValue {
    type M = GrowMap<u64, [u64; 4]>;
    type K = u64;
    type V = [u64; 4];

    fn key(i: u64) -> u64 {
        BASE + i
    }
    fn val(i: u64) -> [u64; 4] {
        [i, i + 1, i + 2, i + 3]
    }
    fn bump(v: &[u64; 4]) -> [u64; 4] {
        let mut next = *v;
        next[0] += 1;
        next
    }
    fn weight(v: &[u64; 4]) -> u64 {
        v[0]
    }
    fn migrations(map: &Self::M) -> u64 {
        map.migrations_completed()
    }
    fn size_exact(map: &Self::M) -> usize {
        map.size_exact_quiescent()
    }
}

/// Single-threaded round-trip over the full `GenericMapHandle` surface.
fn round_trip<F: Fixture>() {
    let map = F::M::with_capacity(2048);
    let mut h = map.handle();
    let name = F::M::map_name();

    for i in 0..512 {
        assert!(h.insert(&F::key(i), &F::val(i)), "{name}: first insert");
    }
    for i in 0..512 {
        assert!(!h.insert(&F::key(i), &F::val(0)), "{name}: dup insert");
        assert_eq!(h.find(&F::key(i)), Some(F::val(i)), "{name}: find");
    }
    assert_eq!(h.find(&F::key(100_000)), None, "{name}: absent key");

    // update only touches existing elements.
    assert!(h.update(&F::key(0), &|v| F::bump(v)), "{name}: update");
    assert_eq!(h.find(&F::key(0)), Some(F::bump(&F::val(0))));
    assert!(
        !h.update(&F::key(100_000), &|v| F::bump(v)),
        "{name}: update absent"
    );

    // insert_or_update inserts when absent, updates when present.
    assert!(h
        .insert_or_update(&F::key(1000), &F::val(7), &|v| F::bump(v))
        .inserted());
    assert!(!h
        .insert_or_update(&F::key(1000), &F::val(9), &|v| F::bump(v))
        .inserted());
    assert_eq!(h.find(&F::key(1000)), Some(F::bump(&F::val(7))));

    // try-variants succeed when no growth pressure exists.
    assert_eq!(h.try_insert(&F::key(2000), &F::val(1)), Ok(true));
    assert_eq!(h.try_insert(&F::key(2000), &F::val(2)), Ok(false));
    assert!(h
        .try_insert_or_update(&F::key(2000), &F::val(3), &|v| F::bump(v))
        .is_ok());

    // erase + reinsert.
    assert!(h.erase(&F::key(3)), "{name}: erase present");
    assert!(!h.erase(&F::key(3)), "{name}: erase absent");
    assert_eq!(h.find(&F::key(3)), None);
    assert!(h.insert(&F::key(3), &F::val(33)), "{name}: reinsert");
    assert_eq!(h.find(&F::key(3)), Some(F::val(33)));
    h.quiesce();
}

/// Concurrent distinct-key inserts from a tiny initial capacity: every
/// element must survive the growth migrations exactly once.
fn concurrent_inserts_across_migrations<F: Fixture>() {
    let map = F::M::with_capacity(16);
    let threads = 4u64;
    let per_thread = 2_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                for i in 0..per_thread {
                    let idx = t * per_thread + i;
                    assert!(h.insert(&F::key(idx), &F::val(idx)));
                }
                h.quiesce();
            });
        }
    });
    let name = F::M::map_name();
    assert!(F::migrations(&map) > 0, "{name}: never migrated");
    let mut h = map.handle();
    for idx in 0..threads * per_thread {
        assert_eq!(h.find(&F::key(idx)), Some(F::val(idx)), "{name}: lost");
    }
    assert_eq!(F::size_exact(&map), (threads * per_thread) as usize);
}

/// Concurrent insert-or-update on a small hot key set: the per-key unit
/// increments must sum exactly, across migrations.
fn upsert_atomicity<F: Fixture>() {
    let map = F::M::with_capacity(16);
    let threads = 4u64;
    let per_thread = 4_000u64;
    let distinct = 128u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                for i in 0..per_thread {
                    let key = F::key((i.wrapping_mul(t + 1)) % distinct);
                    h.insert_or_update(&key, &F::val(0), &|v| F::bump(v));
                }
                h.quiesce();
            });
        }
    });
    let name = F::M::map_name();
    let mut h = map.handle();
    let base_weight = F::weight(&F::val(0));
    let mut increments = 0u64;
    let mut present = 0u64;
    for k in 0..distinct {
        if let Some(v) = h.find(&F::key(k)) {
            present += 1;
            increments += F::weight(&v) - base_weight;
        }
    }
    // Every operation either inserted the base value or applied one bump.
    assert_eq!(
        increments + present,
        threads * per_thread,
        "{name}: lost updates"
    );
    assert_eq!(F::size_exact(&map), present as usize);
}

/// Every `*_batch` default must produce exactly the per-op loop's results,
/// including duplicate keys inside one batch.
fn batch_matches_per_op<F: Fixture>() {
    let name = F::M::map_name();
    let mut elements: Vec<(F::K, F::V)> = (0..300).map(|i| (F::key(i), F::val(i))).collect();
    // Duplicates inside the batch: the per-op loop semantics decide.
    for i in 0..30 {
        elements.push((F::key(i), F::val(i + 500)));
    }

    let batched = F::M::with_capacity(1024);
    let looped = F::M::with_capacity(1024);
    let mut hb = batched.handle();
    let mut hl = looped.handle();

    let inserted_b = hb.insert_batch(&elements);
    let inserted_l = elements.iter().filter(|(k, v)| hl.insert(k, v)).count();
    assert_eq!(inserted_b, inserted_l, "{name}: insert_batch count");

    let keys: Vec<F::K> = (0..330).map(F::key).collect();
    let mut out_b = vec![None; keys.len()];
    hb.find_batch(&keys, &mut out_b);
    let out_l: Vec<Option<F::V>> = keys.iter().map(|k| hl.find(k)).collect();
    assert_eq!(out_b, out_l, "{name}: find_batch results");

    let upserts: Vec<(F::K, F::V)> = (250..350).map(|i| (F::key(i), F::val(i))).collect();
    let new_b = hb.insert_or_update_batch(&upserts, &|v| F::bump(v));
    let new_l = upserts
        .iter()
        .filter(|(k, v)| hl.insert_or_update(k, v, &|v| F::bump(v)).inserted())
        .count();
    assert_eq!(new_b, new_l, "{name}: insert_or_update_batch count");

    let erase_keys: Vec<F::K> = (200..280).map(F::key).collect();
    let erased_b = hb.erase_batch(&erase_keys);
    let erased_l = erase_keys.iter().filter(|k| hl.erase(k)).count();
    assert_eq!(erased_b, erased_l, "{name}: erase_batch count");

    let mut out_b = vec![None; keys.len()];
    hb.find_batch(&keys, &mut out_b);
    let out_l: Vec<Option<F::V>> = keys.iter().map(|k| hl.find(k)).collect();
    assert_eq!(out_b, out_l, "{name}: post-erase state diverged");
}

/// Batches racing a live migration must neither lose nor duplicate
/// elements: tiny initial capacity, four threads feeding disjoint batches.
fn batches_race_migration<F: Fixture>() {
    let map = F::M::with_capacity(16);
    let threads = 4u64;
    let batches = 8u64;
    let batch_len = 512u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                for b in 0..batches {
                    let start = (t * batches + b) * batch_len;
                    let elements: Vec<(F::K, F::V)> = (start..start + batch_len)
                        .map(|i| (F::key(i), F::val(i)))
                        .collect();
                    let inserted = h.insert_batch(&elements);
                    assert_eq!(inserted, batch_len as usize, "batch lost elements");
                }
                h.quiesce();
            });
        }
    });
    let name = F::M::map_name();
    assert!(F::migrations(&map) > 0, "{name}: never migrated");
    let total = threads * batches * batch_len;
    let mut h = map.handle();
    let keys: Vec<F::K> = (0..total).map(F::key).collect();
    let mut out = vec![None; keys.len()];
    h.find_batch(&keys, &mut out);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, Some(F::val(i as u64)), "{name}: lost {i}");
    }
    assert_eq!(F::size_exact(&map), total as usize, "{name}: duplicates");
}

macro_rules! generic_conformance {
    ($($module:ident => $fixture:ty),+ $(,)?) => {
        $(
            mod $module {
                use super::*;

                #[test]
                fn round_trip() {
                    super::round_trip::<$fixture>();
                }

                #[test]
                fn concurrent_inserts_across_migrations() {
                    super::concurrent_inserts_across_migrations::<$fixture>();
                }

                #[test]
                fn upsert_atomicity() {
                    super::upsert_atomicity::<$fixture>();
                }

                #[test]
                fn batch_matches_per_op() {
                    super::batch_matches_per_op::<$fixture>();
                }

                #[test]
                fn batches_race_migration() {
                    super::batches_race_migration::<$fixture>();
                }
            }
        )+
    };
}

generic_conformance! {
    grow_map_u64_u64 => InlineInline,
    grow_map_string_u64 => BoxedKey,
    grow_map_u64_array => BoxedValue,
}
