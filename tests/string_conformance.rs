//! Generic [`StringMap`] conformance suite (§5.7 complex keys).
//!
//! Both string tables — the bounded `stringFolklore` baseline and the
//! growing, deleting `stringGrow` subsystem — are driven through one
//! generic harness over the [`StringMap`] trait, exactly like the word
//! tables run through the [`ConcurrentMap`] suite in `conformance.rs`:
//!
//! * a single-threaded round-trip over the full handle surface,
//! * publication-order checks (a found value is always fully published),
//! * concurrent word-count exactness: sum of all counts == number of
//!   words ingested, and count per word == occurrences,
//! * concurrent same-key insert races with exactly one winner,
//! * deletion round-trips (erase, reinsert, erase race single winner),
//! * signature-collision keys resolved by the full string compare,
//! * for growing tables, all of the above across live migrations.

use growt_repro::prelude::*;

fn threads() -> usize {
    4
}

/// Single-threaded round-trip over the full `StringMapHandle` surface.
fn round_trip<M: StringMap>() {
    let table = M::with_capacity(2048);
    let mut h = table.handle();
    let name = M::map_name();

    for i in 0..512u64 {
        assert!(h.insert(&format!("rt-{i}"), i + 1), "{name}: insert rt-{i}");
    }
    for i in 0..512u64 {
        assert!(
            !h.insert(&format!("rt-{i}"), 0),
            "{name}: dup insert rt-{i}"
        );
        assert_eq!(h.find(&format!("rt-{i}")), Some(i + 1), "{name}: find");
    }
    assert_eq!(h.find("absent"), None, "{name}: absent key");

    assert_eq!(h.fetch_add("rt-0", 5), Some(1), "{name}: fetch_add present");
    assert_eq!(h.find("rt-0"), Some(6), "{name}: fetch_add result");
    assert_eq!(h.fetch_add("absent", 5), None, "{name}: fetch_add absent");

    assert!(
        h.insert_or_add("ioa", 3).inserted(),
        "{name}: upsert absent"
    );
    assert!(
        !h.insert_or_add("ioa", 4).inserted(),
        "{name}: upsert present"
    );
    assert_eq!(h.find("ioa"), Some(7), "{name}: upsert result");

    assert!(h.erase("ioa"), "{name}: erase present");
    assert!(!h.erase("ioa"), "{name}: erase absent");
    assert_eq!(h.find("ioa"), None, "{name}: erased key gone");
    assert!(h.insert_or_add("ioa", 9).inserted(), "{name}: reinsert");
    assert_eq!(h.find("ioa"), Some(9), "{name}: reinsert value");

    // Empty, unicode and long keys are ordinary keys.
    assert!(h.insert("", 1), "{name}: empty key");
    assert!(h.insert("wörter-zählen-🔢", 2), "{name}: unicode key");
    let long = "long-".repeat(4_000);
    assert!(h.insert(&long, 3), "{name}: long key");
    assert_eq!(h.find(""), Some(1), "{name}");
    assert_eq!(h.find("wörter-zählen-🔢"), Some(2), "{name}");
    assert_eq!(h.find(&long), Some(3), "{name}");

    h.quiesce();
}

/// Concurrent word-count exactness: after ingesting a Zipf word stream
/// with `insert_or_add(word, 1)` from several threads, every word's count
/// equals its number of occurrences and the counts sum to the stream
/// length.  For growing tables the table starts tiny, so the ingest
/// crosses several migrations.
fn wordcount_exact<M: StringMap>(initial_capacity: usize, ops: usize, vocab: usize) {
    let name = M::map_name();
    let corpus = word_corpus(ops, vocab, 1.0, 0xC0DE);
    let expected = corpus.expected_counts();
    let table = M::with_capacity(initial_capacity);
    let inserted = std::sync::atomic::AtomicU64::new(0);
    let p = threads();
    std::thread::scope(|s| {
        for t in 0..p {
            let table = &table;
            let corpus = &corpus;
            let inserted = &inserted;
            s.spawn(move || {
                let mut h = table.handle();
                let mut mine = 0u64;
                for (i, &w) in corpus.stream.iter().enumerate() {
                    if i % p == t {
                        let word = &corpus.vocabulary[w as usize];
                        if h.insert_or_add(word, 1).inserted() {
                            mine += 1;
                        }
                    }
                }
                inserted.fetch_add(mine, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    let distinct = expected.iter().filter(|&&c| c > 0).count() as u64;
    assert_eq!(
        inserted.load(std::sync::atomic::Ordering::Relaxed),
        distinct,
        "{name}: insertions != distinct words (duplicate or lost keys)"
    );
    let mut h = table.handle();
    let mut total = 0u64;
    for (word, &count) in corpus.vocabulary.iter().zip(&expected) {
        let stored = h.find(word);
        assert_eq!(
            stored,
            (count > 0).then_some(count),
            "{name}: count for {word}"
        );
        total += stored.unwrap_or(0);
    }
    assert_eq!(
        total as usize,
        corpus.total_words(),
        "{name}: sum of counts != words ingested"
    );
}

/// Concurrent same-key insert races have exactly one winner.
fn insert_race_single_winner<M: StringMap>() {
    let name = M::map_name();
    let table = M::with_capacity(4_096);
    let wins = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads() {
            let table = &table;
            let wins = &wins;
            s.spawn(move || {
                let mut h = table.handle();
                for i in 0..1_000u64 {
                    if h.insert(&format!("race-{i}"), i) {
                        wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        wins.load(std::sync::atomic::Ordering::Relaxed),
        1_000,
        "{name}: same-key insert races must have exactly one winner"
    );
}

/// Racing erases of the same keys: every key is erased exactly once.
fn erase_race_single_winner<M: StringMap>() {
    let name = M::map_name();
    let table = M::with_capacity(4_096);
    {
        let mut h = table.handle();
        for i in 0..1_000u64 {
            assert!(h.insert(&format!("del-{i}"), i));
        }
    }
    let erased = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads() {
            let table = &table;
            let erased = &erased;
            s.spawn(move || {
                let mut h = table.handle();
                for i in 0..1_000u64 {
                    if h.erase(&format!("del-{i}")) {
                        erased.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
                h.quiesce();
            });
        }
    });
    assert_eq!(
        erased.load(std::sync::atomic::Ordering::Relaxed),
        1_000,
        "{name}: every key must be erased exactly once"
    );
    let mut h = table.handle();
    for i in 0..1_000u64 {
        assert_eq!(
            h.find(&format!("del-{i}")),
            None,
            "{name}: del-{i} resurrected"
        );
    }
}

/// Signature collisions (distinct strings with equal 15-bit signatures
/// colliding onto nearby cells) are resolved by the full key compare.
fn values_survive_dense_collisions<M: StringMap>() {
    let name = M::map_name();
    // A small capacity forces long shared probe runs, so keys with equal
    // signatures and overlapping probe paths exercise the compare path.
    let table = M::with_capacity(2_048);
    let mut h = table.handle();
    for i in 0..1_500u64 {
        assert!(h.insert(&format!("col-{i}"), i * 3 + 1), "{name}: col-{i}");
    }
    for i in 0..1_500u64 {
        assert_eq!(
            h.find(&format!("col-{i}")),
            Some(i * 3 + 1),
            "{name}: col-{i} got another key's value"
        );
    }
}

macro_rules! string_conformance {
    ($module:ident, $table:ty, $growing_initial:expr) => {
        mod $module {
            use super::*;

            #[test]
            fn round_trip() {
                super::round_trip::<$table>();
            }

            #[test]
            fn wordcount_exact_concurrent() {
                // Capacity chosen so bounded tables hold the vocabulary and
                // growing tables cross several migrations ($growing_initial
                // is tiny for those).
                wordcount_exact::<$table>($growing_initial, 60_000, 700);
            }

            #[test]
            fn insert_race_single_winner() {
                super::insert_race_single_winner::<$table>();
            }

            #[test]
            fn erase_race_single_winner() {
                super::erase_race_single_winner::<$table>();
            }

            #[test]
            fn values_survive_dense_collisions() {
                super::values_survive_dense_collisions::<$table>();
            }
        }
    };
}

string_conformance!(string_folklore, StringKeyTable, 2_048);
string_conformance!(string_grow, GrowingStringTable, 32);

#[test]
fn growing_table_reports_growth() {
    assert!(GrowingStringTable::growing());
    assert!(!StringKeyTable::growing());
    let table = GrowingStringTable::with_capacity(16);
    let mut h = table.handle();
    for i in 0..10_000u64 {
        h.insert(&format!("g-{i}"), i);
    }
    assert!(
        table.migrations_completed() > 0,
        "tiny growing table never migrated"
    );
    assert!(table.current_capacity() >= 20_000);
    for i in 0..10_000u64 {
        assert_eq!(h.find(&format!("g-{i}")), Some(i));
    }
}
