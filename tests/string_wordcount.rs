//! Word-count acceptance test of the growing string table (§5.7):
//! concurrent ingest across migrations and a deletion-triggered cleanup,
//! with allocation-exact reclamation asserted through `growt-alloc-track`.
//!
//! The tracking allocator is installed as the binary's global allocator
//! (the Fig. 10 methodology), so "no leaked key allocations" is checked
//! at the allocator level: after the table and all handles are dropped,
//! the live-byte counter must return to its pre-table baseline.  This
//! file intentionally holds a single `#[test]` — a second concurrently
//! running test would pollute the allocator counters.

use growt_repro::growt_alloc_track;
use growt_repro::prelude::*;

#[global_allocator]
static GLOBAL: growt_alloc_track::TrackingAlloc = growt_alloc_track::TrackingAlloc;

/// One-time lazy allocations (thread-local buffers, runtime statics) must
/// happen before the baseline is taken, so the leak check only sees the
/// table's own allocations.
fn warmup() {
    let table = GrowingStringTable::with_capacity(16);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let table = &table;
            s.spawn(move || {
                let mut h = table.handle();
                for i in 0..200u64 {
                    h.insert_or_add(&format!("warm-{i}"), 1);
                    if i % 2 == 0 {
                        h.erase(&format!("warm-{i}"));
                    }
                }
                h.quiesce();
            });
        }
    });
    drop(table);
}

#[test]
fn wordcount_exact_across_migrations_and_cleanup_without_leaks() {
    warmup();
    let baseline = growt_alloc_track::current_bytes();

    {
        // Tiny initial capacity: the ingest must cross several growth
        // migrations before reaching the vocabulary size.
        let table = GrowingStringTable::with_capacity(64);
        let threads = 4usize;
        let corpus = word_corpus(80_000, 1_500, 1.0, 0xACCE97);
        let expected = corpus.expected_counts();

        // Phase 1: concurrent ingest.
        std::thread::scope(|s| {
            for t in 0..threads {
                let table = &table;
                let corpus = &corpus;
                s.spawn(move || {
                    let mut h = table.handle();
                    for (i, &w) in corpus.stream.iter().enumerate() {
                        if i % threads == t {
                            h.insert_or_add(&corpus.vocabulary[w as usize], 1);
                        }
                    }
                    h.quiesce();
                });
            }
        });
        let migrations_after_ingest = table.migrations_completed();
        assert!(
            migrations_after_ingest >= 1,
            "ingest from capacity 64 must cross at least one migration"
        );

        // Word-count exactness: count per word == occurrences, and the
        // counts sum to the number of words ingested.
        {
            let mut h = table.handle();
            let mut total = 0u64;
            for (word, &count) in corpus.vocabulary.iter().zip(&expected) {
                let stored = h.find(word);
                assert_eq!(stored, (count > 0).then_some(count), "count for {word}");
                total += stored.unwrap_or(0);
            }
            assert_eq!(total as usize, corpus.total_words(), "sum of all counts");
        }

        // Phase 2: concurrently erase every even-ranked word, then keep
        // inserting fresh keys so the insertion counter crosses the
        // threshold again and a cleanup migration reclaims the tombstones.
        std::thread::scope(|s| {
            for t in 0..threads {
                let table = &table;
                let corpus = &corpus;
                s.spawn(move || {
                    let mut h = table.handle();
                    for (rank, word) in corpus.vocabulary.iter().enumerate() {
                        if rank % 2 == 0 && rank % threads == t {
                            h.erase(word);
                        }
                    }
                    for i in 0..4_000u64 {
                        h.insert_or_add(&format!("fresh-{t}-{i}"), 1);
                    }
                    h.quiesce();
                });
            }
        });
        assert!(
            table.migrations_completed() > migrations_after_ingest,
            "the deletion phase must trigger a cleanup migration"
        );

        // Erased words are gone, surviving words keep their exact counts,
        // fresh keys are all present.
        {
            let mut h = table.handle();
            for (rank, (word, &count)) in corpus.vocabulary.iter().zip(&expected).enumerate() {
                let stored = h.find(word);
                if rank % 2 == 0 {
                    assert_eq!(stored, None, "erased word {word} resurrected");
                } else {
                    assert_eq!(stored, (count > 0).then_some(count), "survivor {word}");
                }
            }
            for t in 0..threads {
                for i in 0..4_000u64 {
                    assert_eq!(h.find(&format!("fresh-{t}-{i}")), Some(1));
                }
            }
            // With every handle quiescent, the QSBR domain has reclaimed
            // all retired key allocations.
            h.quiesce();
        }
        assert_eq!(
            table.stats().pending_reclamation,
            0,
            "retired key allocations left in the QSBR limbo list"
        );
        drop(table);
    }

    // Allocation-exact teardown: everything the subsystem allocated —
    // live keys, erased keys, table generations, domain bookkeeping —
    // has been returned to the allocator.
    let after = growt_alloc_track::current_bytes();
    assert!(
        after <= baseline,
        "leaked {} bytes of key allocations (baseline {baseline}, after {after})",
        after - baseline
    );
}
