//! Integration test: every table implementation in the workspace produces
//! the same results as a sequential reference model when driven with the
//! same (deterministic) operation sequence.

use std::collections::HashMap;

use growt_repro::prelude::*;
use growt_workloads::{uniform_distinct_keys, zipf_keys};

/// Replay a deterministic single-threaded mixed workload against a table
/// and against `HashMap`, comparing every result.
/// `capacity`: non-growing tables must be sized for the total number of
/// insertions because their tombstones are never reclaimed (paper §5.4).
fn model_check_with_capacity<M: ConcurrentMap>(ops: usize, capacity: usize) {
    let table = M::with_capacity(capacity);
    let mut handle = table.handle();
    let mut model: HashMap<u64, u64> = HashMap::new();

    let keys = zipf_keys(ops, 4096, 0.9, 12345);
    for (i, &key) in keys.iter().enumerate() {
        match i % 5 {
            0 | 1 => {
                let expected = !model.contains_key(&key);
                let got = handle.insert(key, key + i as u64);
                assert_eq!(
                    got,
                    expected,
                    "{}: insert({key}) at op {i}",
                    M::table_name()
                );
                model.entry(key).or_insert(key + i as u64);
            }
            2 => {
                let got = handle.find(key);
                assert_eq!(
                    got.is_some(),
                    model.contains_key(&key),
                    "{}: find({key}) presence at op {i}",
                    M::table_name()
                );
                if let (Some(got), Some(want)) = (got, model.get(&key)) {
                    assert_eq!(
                        got,
                        *want,
                        "{}: find({key}) value at op {i}",
                        M::table_name()
                    );
                }
            }
            3 => {
                let got = handle.insert_or_update(key, 1, |cur, d| cur.wrapping_add(d));
                let expected = if model.contains_key(&key) {
                    InsertOrUpdate::Updated
                } else {
                    InsertOrUpdate::Inserted
                };
                assert_eq!(
                    got,
                    expected,
                    "{}: upsert({key}) at op {i}",
                    M::table_name()
                );
                model
                    .entry(key)
                    .and_modify(|v| *v = v.wrapping_add(1))
                    .or_insert(1);
            }
            _ => {
                let got = handle.erase(key);
                let expected = model.remove(&key).is_some();
                assert_eq!(got, expected, "{}: erase({key}) at op {i}", M::table_name());
            }
        }
        handle.quiesce();
    }
    // Final contents agree.
    for (&key, &value) in &model {
        assert_eq!(
            handle.find(key),
            Some(value),
            "{}: final value of {key}",
            M::table_name()
        );
    }
}

/// Model check for tables that only support overwriting updates and may not
/// support general deletion semantics under this interface: inserts, finds,
/// overwrites only.
fn model_check_overwrite_only<M: ConcurrentMap>(ops: usize) {
    let table = M::with_capacity(ops);
    let mut handle = table.handle();
    let mut model: HashMap<u64, u64> = HashMap::new();
    let keys = zipf_keys(ops, 4096, 0.9, 777);
    for (i, &key) in keys.iter().enumerate() {
        match i % 3 {
            0 => {
                let got = handle.insert(key, key);
                assert_eq!(
                    got,
                    !model.contains_key(&key),
                    "{}: insert {key}",
                    M::table_name()
                );
                model.entry(key).or_insert(key);
            }
            1 => {
                if model.contains_key(&key) {
                    assert!(handle.update_overwrite(key, i as u64));
                    model.insert(key, i as u64);
                }
            }
            _ => {
                let got = handle.find(key);
                assert_eq!(got.is_some(), model.contains_key(&key));
                if let Some(v) = got {
                    assert_eq!(v, model[&key]);
                }
            }
        }
        handle.quiesce();
    }
}

fn model_check<M: ConcurrentMap>(ops: usize) {
    model_check_with_capacity::<M>(ops, 1024);
}

#[test]
fn growt_variants_match_model() {
    model_check::<UaGrow>(20_000);
    model_check::<UsGrow>(20_000);
    model_check::<PaGrow>(20_000);
    model_check::<PsGrow>(20_000);
}

#[test]
fn folklore_and_tsx_match_model() {
    // Non-growing tables are sized for the total number of insertions, as
    // the paper prescribes for tombstone-only deletion (§5.4).
    model_check_with_capacity::<Folklore>(20_000, 20_000);
    model_check_with_capacity::<TsxFolklore>(20_000, 20_000);
}

#[test]
fn sequential_tables_match_model() {
    model_check_with_capacity::<SeqTable>(20_000, 20_000);
    model_check::<SeqGrowingTable>(20_000);
}

#[test]
fn chaining_baselines_match_model() {
    model_check::<LeaHash>(20_000);
    model_check::<TbbHashMap>(20_000);
    model_check::<TbbUnorderedMap>(20_000);
    model_check::<RcuTable>(20_000);
    model_check::<RcuQsbrTable>(20_000);
}

#[test]
fn open_addressing_baselines_match_model() {
    model_check::<Cuckoo>(20_000);
    model_check::<FollyStyle>(10_000);
    model_check_overwrite_only::<JunctionLinear>(20_000);
    model_check_overwrite_only::<JunctionLeapfrog>(20_000);
    model_check_overwrite_only::<Hopscotch>(20_000);
    model_check_overwrite_only::<PhaseConcurrent>(20_000);
}

#[test]
fn parallel_insert_find_agree_across_tables() {
    fn run<M: ConcurrentMap>() -> u64 {
        let keys = uniform_distinct_keys(30_000, 99);
        let table = M::with_capacity(keys.len());
        let m = insert_driver(&table, &keys, 4);
        assert_eq!(
            m.aux as usize,
            keys.len(),
            "{}: lost inserts",
            M::table_name()
        );
        let m = find_driver(&table, &keys, 4);
        assert_eq!(
            m.aux as usize,
            keys.len(),
            "{}: lost finds",
            M::table_name()
        );
        m.aux
    }
    let expected = 30_000u64;
    assert_eq!(run::<UaGrow>(), expected);
    assert_eq!(run::<UsGrow>(), expected);
    assert_eq!(run::<PaGrow>(), expected);
    assert_eq!(run::<PsGrow>(), expected);
    assert_eq!(run::<Folklore>(), expected);
    assert_eq!(run::<TsxFolklore>(), expected);
    assert_eq!(run::<LeaHash>(), expected);
    assert_eq!(run::<Hopscotch>(), expected);
    assert_eq!(run::<Cuckoo>(), expected);
    assert_eq!(run::<FollyStyle>(), expected);
    assert_eq!(run::<TbbHashMap>(), expected);
    assert_eq!(run::<TbbUnorderedMap>(), expected);
    assert_eq!(run::<RcuTable>(), expected);
    assert_eq!(run::<RcuQsbrTable>(), expected);
    assert_eq!(run::<JunctionLinear>(), expected);
    assert_eq!(run::<JunctionLeapfrog>(), expected);
    assert_eq!(run::<PhaseConcurrent>(), expected);
}

#[test]
fn parallel_aggregation_agrees_on_supporting_tables() {
    fn run<M: ConcurrentMap>() {
        let keys = zipf_keys(60_000, 2_000, 1.0, 5);
        let table = M::with_capacity(4_096);
        // The sequential reference tables use no synchronization and are
        // only ever driven single-threaded (paper §8.1.4), exactly as the
        // bench harness clamps them.
        let threads = if M::table_name().starts_with("sequential") {
            1
        } else {
            4
        };
        aggregate_driver(&table, &keys, threads);
        let mut handle = table.handle();
        let total: u64 = (1..=2_000u64)
            .map(|k| handle.find(k + 16).unwrap_or(0))
            .sum();
        assert_eq!(total, 60_000, "{}: lost increments", M::table_name());
    }
    run::<UaGrow>();
    run::<UsGrow>();
    run::<PaGrow>();
    run::<PsGrow>();
    run::<Folklore>();
    run::<TsxFolklore>();
    run::<LeaHash>();
    run::<TbbHashMap>();
    run::<RcuTable>();
    run::<Cuckoo>();
    run::<FollyStyle>();
    run::<SeqGrowingTable>();
}
