//! Allocation-exact reclamation of the generic map's out-of-line memory.
//!
//! `GrowMap<String, [u64; 4]>` exercises both packed representations at
//! once: every element owns a boxed key *and* a boxed value, updates
//! displace value boxes into the QSBR limbo list, and erases retire both
//! allocations.  The tracking allocator is installed as the binary's
//! global allocator, so "nothing leaked" is checked at the allocator
//! level: after the map and all handles drop, the live-byte counter must
//! return to its pre-map baseline — no matter how many migrations,
//! updates and deletions happened in between.
//!
//! This file intentionally holds a single `#[test]` — a second
//! concurrently running test would pollute the allocator counters.

use growt_repro::growt_alloc_track;
use growt_repro::prelude::*;

#[global_allocator]
static GLOBAL: growt_alloc_track::TrackingAlloc = growt_alloc_track::TrackingAlloc;

/// One-time lazy allocations (thread-local buffers, runtime statics) must
/// happen before the baseline is taken, so the leak check only sees the
/// map's own allocations.
fn warmup() {
    let map: GrowMap<String, [u64; 4]> = GrowMap::new(16);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                for i in 0..200u64 {
                    let key = format!("warm-{i}");
                    h.insert_or_update(&key, &[1, 0, 0, 0], &|v: &[u64; 4]| {
                        let mut n = *v;
                        n[0] += 1;
                        n
                    });
                    if i % 2 == 0 {
                        h.erase(&key);
                    }
                }
                h.quiesce();
            });
        }
    });
    drop(map);
}

/// Joined threads may still be mid-shutdown: `scope`/`join` return when a
/// worker signals completion, but the runtime frees the worker's own
/// bookkeeping (its `Thread` handle, TLS slots) moments later.  Wait for
/// the live-byte counter to hold still before trusting it.
fn settled_bytes() -> u64 {
    let mut last = growt_alloc_track::current_bytes();
    let mut stable = 0;
    for _ in 0..500 {
        std::thread::sleep(std::time::Duration::from_millis(2));
        let now = growt_alloc_track::current_bytes();
        if now == last {
            stable += 1;
            if stable >= 25 {
                break;
            }
        } else {
            stable = 0;
            last = now;
        }
    }
    last
}

#[test]
fn generic_map_reclaims_every_box_exactly() {
    warmup();
    let baseline = settled_bytes();

    {
        // Tiny initial capacity: the ingest crosses several growth
        // migrations while keys and values churn.
        let map: GrowMap<String, [u64; 4]> = GrowMap::new(16);
        let threads = 4u64;
        let per_thread = 2_500u64;
        let distinct = 600u64;

        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &map;
                s.spawn(move || {
                    let mut h = map.handle();
                    for i in 0..per_thread {
                        let idx = (i.wrapping_mul(t + 1)) % distinct;
                        let key = format!("leak-{idx}");
                        // Insert, update (displacing a value box), and
                        // periodically erase (retiring both boxes).
                        h.insert_or_update(&key, &[1, t, 0, 0], &|v: &[u64; 4]| {
                            let mut n = *v;
                            n[0] += 1;
                            n
                        });
                        if i % 7 == 0 {
                            h.erase(&key);
                        }
                    }
                    h.quiesce();
                });
            }
        });

        assert!(map.migrations_completed() > 0, "never migrated");

        // A final handle quiescing alone cannot free what other
        // (dropped) handles retired only if the domain still thinks they
        // are active — dropping a handle unregisters it, so one surviving
        // handle's quiescent states drain the limbo list completely.
        let mut h = map.handle();
        h.quiesce();
        h.quiesce();
        drop(h);
        drop(map);
        // The QSBR domain drops with the map, releasing any remaining
        // deferred boxes.
    }

    // The counter must return to the baseline *exactly* — thread-shutdown
    // stragglers just mean it may take a few milliseconds to get there.
    let mut after = settled_bytes();
    for _ in 0..500 {
        if after == baseline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        after = growt_alloc_track::current_bytes();
    }
    assert_eq!(
        after,
        baseline,
        "generic map leaked {} bytes of key/value boxes",
        after as i64 - baseline as i64
    );
}
