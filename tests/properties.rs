//! Property-based tests (proptest) on the core data structures and their
//! invariants.

use std::collections::HashMap;

use growt_repro::prelude::*;
use proptest::prelude::*;

/// A small operation language for the model-based property test.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Find(u64),
    Upsert(u64, u64),
    Erase(u64),
    Overwrite(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key universe maximizes collisions, duplicate inserts and
    // delete/re-insert interactions.
    let key = 2u64..200;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Find),
        (key.clone(), 1u64..5).prop_map(|(k, d)| Op::Upsert(k, d)),
        key.clone().prop_map(Op::Erase),
        (key, any::<u64>()).prop_map(|(k, v)| Op::Overwrite(k, v)),
    ]
}

fn run_model<M: ConcurrentMap>(ops: &[Op]) -> Result<(), TestCaseError> {
    run_model_with_capacity::<M>(ops, 16)
}

fn run_model_with_capacity<M: ConcurrentMap>(
    ops: &[Op],
    capacity: usize,
) -> Result<(), TestCaseError> {
    let table = M::with_capacity(capacity);
    let mut handle = table.handle();
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let expected = !model.contains_key(&k);
                prop_assert_eq!(handle.insert(k, v), expected);
                model.entry(k).or_insert(v);
            }
            Op::Find(k) => {
                prop_assert_eq!(handle.find(k), model.get(&k).copied());
            }
            Op::Upsert(k, d) => {
                let expected = if model.contains_key(&k) {
                    InsertOrUpdate::Updated
                } else {
                    InsertOrUpdate::Inserted
                };
                prop_assert_eq!(
                    handle.insert_or_update(k, d, |c, x| c.wrapping_add(x)),
                    expected
                );
                model
                    .entry(k)
                    .and_modify(|v| *v = v.wrapping_add(d))
                    .or_insert(d);
            }
            Op::Erase(k) => {
                prop_assert_eq!(handle.erase(k), model.remove(&k).is_some());
            }
            Op::Overwrite(k, v) => {
                let expected = model.contains_key(&k);
                prop_assert_eq!(handle.update_overwrite(k, v), expected);
                if expected {
                    model.insert(k, v);
                }
            }
        }
    }
    for (&k, &v) in &model {
        prop_assert_eq!(handle.find(k), Some(v));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// uaGrow behaves exactly like HashMap for arbitrary op sequences.
    #[test]
    fn ua_grow_matches_hashmap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model::<UaGrow>(&ops)?;
    }

    /// usGrow (synchronized protocol, fetch-add specializations).
    #[test]
    fn us_grow_matches_hashmap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model::<UsGrow>(&ops)?;
    }

    /// The bounded folklore table, sized for the whole key universe (it
    /// cannot grow and its tombstones are never reclaimed, §5.4).
    #[test]
    fn folklore_matches_hashmap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        run_model_with_capacity::<Folklore>(&ops, 512)?;
    }

    /// The sequential reference table is itself a faithful map.
    #[test]
    fn seq_table_matches_hashmap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model::<SeqGrowingTable>(&ops)?;
    }

    /// Zipf samples always fall inside the configured universe, for any
    /// exponent and universe size.
    #[test]
    fn zipf_samples_in_range(s in 0.0f64..2.5, n in 1u64..100_000, seed in any::<u64>()) {
        let sampler = ZipfSampler::new(n, s);
        let mut rng = Mt64::new(seed);
        for _ in 0..200 {
            let k = sampler.sample(&mut rng);
            prop_assert!(k >= 1 && k <= n);
        }
    }

    /// The scaling cell mapping is monotone in the hash value — the
    /// property Lemma 1 (cluster migration) rests on.
    #[test]
    fn scaling_is_monotone(mut hashes in prop::collection::vec(any::<u64>(), 2..200),
                           log_capacity in 4u32..24) {
        let capacity = 1usize << log_capacity;
        hashes.sort_unstable();
        let cells: Vec<usize> = hashes
            .iter()
            .map(|&h| growt_core::config::scale_to_capacity(h, capacity))
            .collect();
        for pair in cells.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        for (&h, &c) in hashes.iter().zip(&cells) {
            prop_assert!(c < capacity);
            // Growing by γ=2 maps the cell into [2c, 2c+2) — the disjoint
            // target ranges of Lemma 1.
            let grown = growt_core::config::scale_to_capacity(h, capacity * 2);
            prop_assert!(grown >= 2 * c && grown < 2 * (c + 1));
        }
    }

    /// Migrating a randomly filled bounded table (with random tombstones)
    /// into a larger one preserves exactly the live contents.
    #[test]
    fn migration_preserves_contents(
        keys in prop::collection::hash_set(2u64..1_000_000, 1..400),
        delete_every in 2usize..5,
        log_growth in 0u32..3,
    ) {
        use growt_core::{migrate, BoundedTable};
        let keys: Vec<u64> = keys.into_iter().collect();
        let src = BoundedTable::with_expected_elements(keys.len().max(4));
        for &k in &keys {
            assert!(matches!(
                src.insert(k, k ^ 0xABCD),
                growt_core::table::InsertOutcome::Inserted { .. }
            ));
        }
        let mut deleted = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if i % delete_every == 0 {
                src.erase(k);
                deleted.push(k);
            }
        }
        let dst = BoundedTable::with_cells(src.capacity() << log_growth, 1);
        migrate::migrate_all_sequential(&src, &dst);
        for &k in &keys {
            if deleted.contains(&k) {
                prop_assert_eq!(dst.find(k), None);
            } else {
                prop_assert_eq!(dst.find(k), Some(k ^ 0xABCD));
            }
        }
    }

    /// The three fingerprint-matching kernels (scalar reference, portable
    /// SWAR, SSE2) are bit-identical on arbitrary group contents — the
    /// striped probe may dispatch to any of them.
    #[test]
    fn probe_kernels_agree(bytes in prop::collection::vec(any::<u8>(), 16..17),
                           hash in any::<u64>()) {
        use growt_core::simd::{
            fingerprint, match_group_scalar, match_group_sse2, match_group_swar, GROUP,
        };
        let group: [u8; GROUP] = bytes.as_slice().try_into().unwrap();
        // Probe both an arbitrary in-range fingerprint and bytes that can
        // also occur in the group itself (hit-heavy patterns).
        for fp in [fingerprint(hash), group[0] | 0x80, 0x80u8, 0xFFu8] {
            let reference = match_group_scalar(&group, fp);
            prop_assert_eq!(match_group_swar(&group, fp), reference);
            if let Some(sse2) = match_group_sse2(&group, fp) {
                prop_assert_eq!(sse2, reference);
            } else {
                // Only a disabled/absent SSE2 path may decline.
                prop_assert!(
                    !cfg!(target_arch = "x86_64") || std::env::var_os("GROWT_NO_SIMD").is_some()
                );
            }
        }
    }

    /// The striped-probe folklore table behaves exactly like HashMap for
    /// arbitrary op sequences (same model as the scalar table above).
    #[test]
    fn folklore_simd_matches_hashmap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        run_model_with_capacity::<FolkloreSimd>(&ops, 512)?;
    }

    /// uaGrow with striped probing: the stripe must stay coherent across
    /// migrations triggered by the op sequence.
    #[test]
    fn ua_grow_simd_matches_hashmap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model::<UaGrowSimd>(&ops)?;
    }

    /// Merging N per-thread latency histograms is exactly the histogram of
    /// the concatenated samples — the property the benchmark drivers rely
    /// on when they record per-thread and merge once after the timed
    /// region.
    #[test]
    fn histogram_merge_equals_concatenation(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..2_000_000_000, 0..60),
            1..6,
        )
    ) {
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            let mut h = LatencyHistogram::new();
            for &v in shard {
                h.record(v);
            }
            merged.merge(&h);
        }
        let mut direct = LatencyHistogram::new();
        for shard in &shards {
            for &v in shard {
                direct.record(v);
            }
        }
        prop_assert_eq!(&merged, &direct);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        prop_assert_eq!(merged.count(), total as u64);
    }

    /// Percentile extraction is monotone in the percentile, bracketed by
    /// the exact min/max, and never below the true percentile of the
    /// recorded samples (log-linear buckets round *up* to the bucket edge).
    #[test]
    fn histogram_percentiles_are_monotone_and_bracketed(
        mut samples in prop::collection::vec(0u64..2_000_000_000, 1..200)
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let mut previous = 0u64;
        for pct in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let value = h.value_at_percentile(pct);
            prop_assert!(value >= previous, "p{pct} regressed");
            previous = value;
            prop_assert!(value <= h.max());
            // Never below the true percentile (ranked sample).
            let rank = ((pct / 100.0) * samples.len() as f64).ceil() as usize;
            let exact = samples[rank.clamp(1, samples.len()) - 1];
            prop_assert!(value >= exact, "p{pct}: {value} < exact {exact}");
        }
        prop_assert_eq!(h.value_at_percentile(100.0), *samples.last().unwrap());
        prop_assert_eq!(h.min(), samples[0]);
    }

    /// The approximate counter never under-estimates by more than p² and is
    /// exact after all handles flush.
    #[test]
    fn approximate_count_error_bound(p in 1usize..16, per_handle in 1usize..200) {
        use growt_core::count::{GlobalCount, LocalCount};
        let global = GlobalCount::new();
        let mut locals: Vec<LocalCount> =
            (0..p).map(|i| LocalCount::new(p, i as u64 + 1)).collect();
        let mut truth = 0u64;
        for round in 0..per_handle {
            for local in locals.iter_mut() {
                local.record_insertion(&global);
                truth += 1;
                let estimate = global.insertions();
                prop_assert!(truth - estimate <= (p * p) as u64,
                    "round {round}: estimate {estimate}, truth {truth}");
            }
        }
        for local in locals.iter_mut() {
            local.flush(&global);
        }
        prop_assert_eq!(global.insertions(), truth);
    }
}
