//! Conformance tests for the zero-shared-traffic operation prologue
//! (§5.3.2) and the counted-pointer reclamation contract it rests on.
//!
//! The handles cache the counted pointer to the current table generation
//! and *borrow* from that cache per operation, so the steady-state fast
//! path of find/insert/update/erase must perform **no shared
//! reference-count RMW at all** — the shared count is touched once per
//! handle per *migration*.  Conversely, the borrow must not break
//! reclamation: once every handle has refreshed past a retired generation
//! it has to be freed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use growt_core::{Consistency, GrowStrategy, GrowingOptions, GrowingTable, HashSelect};

fn options(strategy: GrowStrategy, consistency: Consistency) -> GrowingOptions {
    GrowingOptions {
        strategy,
        consistency,
        threads_hint: 4,
        ..GrowingOptions::default()
    }
}

fn all_variants() -> Vec<(&'static str, GrowingOptions)> {
    vec![
        (
            "uaGrow",
            options(GrowStrategy::Enslave, Consistency::AsyncMarking),
        ),
        (
            "usGrow",
            options(GrowStrategy::Enslave, Consistency::Synchronized),
        ),
        (
            "paGrow",
            options(GrowStrategy::Pool, Consistency::AsyncMarking),
        ),
        (
            "psGrow",
            options(GrowStrategy::Pool, Consistency::Synchronized),
        ),
    ]
}

/// The steady-state fast path takes no shared refcount: across a burst of
/// find/insert/update/erase from live handles, the strong count of the
/// current generation never changes — not even transiently (a concurrent
/// sampler watches for spikes a before/after comparison would miss) — and
/// the counted pointer is never re-acquired.
#[test]
fn fast_path_takes_no_shared_refcount() {
    for (name, opts) in all_variants() {
        // Large enough that the burst (20k inserts + updates + erases)
        // stays far below the 60% growth trigger: no migration, therefore
        // any refcount movement must come from per-op traffic.
        let table = GrowingTable::with_options(1 << 17, opts);
        let mut worker = table.handle();
        let mut second = table.handle(); // a second live handle, idle
        second.insert(2, 2); // warm both caches on the current generation
        worker.insert(3, 3);

        let baseline = table.generation_strong_count();
        let generation = table.current_generation();
        // `current_generation` itself added one count; from here on nothing
        // may move.  Sample the acquire counter after the diagnostics above
        // (each of which legitimately acquires once).
        let acquires_before = table.generation_acquire_count();

        let stop = AtomicBool::new(false);
        let max_seen = std::thread::scope(|s| {
            let sampler = s.spawn(|| {
                // At least one sample even if the burst finishes before the
                // sampler is first scheduled: the steady-state count is
                // baseline + 1 (our diagnostic clone) at any point in time.
                let mut max_seen = Arc::strong_count(&generation);
                while !stop.load(Ordering::Acquire) {
                    max_seen = max_seen.max(Arc::strong_count(&generation));
                    std::thread::yield_now();
                }
                max_seen
            });
            for k in 10..20_010u64 {
                assert!(worker.insert(k, k), "{name}: insert {k}");
                assert_eq!(worker.find(k), Some(k), "{name}: find {k}");
                assert!(worker.update(k, 1, |c, d| c + d), "{name}: update {k}");
                if k % 2 == 0 {
                    assert!(worker.erase(k), "{name}: erase {k}");
                }
            }
            stop.store(true, Ordering::Release);
            sampler.join().unwrap()
        });

        // baseline counts: lock slot + 2 handles; +1 for our diagnostic
        // clone of the generation.  The sampler must never have seen more.
        assert_eq!(
            max_seen,
            baseline + 1,
            "{name}: transient refcount traffic on the fast path"
        );
        assert_eq!(
            table.generation_acquire_count(),
            acquires_before,
            "{name}: counted pointer re-acquired on the fast path"
        );
        drop(generation);
        assert_eq!(
            table.generation_strong_count(),
            baseline,
            "{name}: refcount drifted across the burst"
        );
        assert_eq!(table.migrations_completed(), 0, "{name}: test invalidated");
    }
}

/// Same conformance on the CRC-hashed configuration (the hash path must
/// not reintroduce shared state).
#[test]
fn fast_path_takes_no_shared_refcount_crc_hash() {
    let opts = GrowingOptions {
        hash: HashSelect::Crc,
        threads_hint: 2,
        ..GrowingOptions::default()
    };
    let table = GrowingTable::with_options(1 << 16, opts);
    let mut handle = table.handle();
    handle.insert(5, 5);
    let baseline = table.generation_strong_count();
    let acquires = table.generation_acquire_count();
    for k in 10..5_010u64 {
        handle.insert(k, k);
        handle.find(k);
    }
    // Acquire count first: the strong-count diagnostic itself acquires.
    assert_eq!(table.generation_acquire_count(), acquires);
    assert_eq!(table.generation_strong_count(), baseline);
}

/// Batched operations ride the same borrowed prologue: one acquire-free
/// borrow per segment, zero refcount RMWs.
#[test]
fn batch_fast_path_takes_no_shared_refcount() {
    let table = GrowingTable::with_options(1 << 17, GrowingOptions::default());
    let mut handle = table.handle();
    handle.insert(2, 2);
    let baseline = table.generation_strong_count();
    let acquires = table.generation_acquire_count();
    let elems: Vec<(u64, u64)> = (10..10_010u64).map(|k| (k, k)).collect();
    let keys: Vec<u64> = elems.iter().map(|&(k, _)| k).collect();
    let mut out = vec![None; keys.len()];
    assert_eq!(handle.insert_batch(&elems), elems.len());
    handle.find_batch(&keys, &mut out);
    assert!(out.iter().all(|o| o.is_some()));
    assert_eq!(
        handle.update_batch(&elems, |c, d| c.wrapping_add(d)),
        elems.len()
    );
    assert_eq!(handle.erase_batch(&keys), keys.len());
    // Acquire count first: the strong-count diagnostic itself acquires.
    assert_eq!(table.generation_acquire_count(), acquires);
    assert_eq!(table.generation_strong_count(), baseline);
    assert_eq!(table.migrations_completed(), 0, "test invalidated");
}

/// Reclamation contract behind the borrow refactor: after operations on N
/// handles across ≥ 2 migrations, retired table generations are actually
/// freed — the moment every handle has refreshed its cache, the retired
/// generation's strong count reaches zero (observed through a weak
/// reference), and the current generation's count returns to
/// `1 + live handles`.
#[test]
fn retired_generations_freed_once_all_handles_refresh() {
    for (name, opts) in all_variants() {
        let table = GrowingTable::with_options(64, opts);
        let mut driver = table.handle();
        let mut idle: Vec<_> = (0..3).map(|_| table.handle()).collect();
        // Warm every idle handle's cache on generation 1.
        for (i, h) in idle.iter_mut().enumerate() {
            h.insert(2 + i as u64, 1);
        }
        let gen1 = Arc::downgrade(&table.current_generation());

        // Drive enough inserts through one handle to force ≥ 2 migrations.
        let mut key = 100u64;
        while table.migrations_completed() < 2 {
            driver.insert(key, key);
            key += 1;
            assert!(key < 1_000_000, "{name}: migrations never happened");
        }
        // The driver triggered the last migration from inside `insert`, so
        // its cache still pins the just-retired generation until its next
        // operation refreshes it.
        driver.find(100);
        let gen_current = Arc::downgrade(&table.current_generation());

        // The intermediate generations (driver refreshed past them, no one
        // else ever cached them) are gone; generation 1 is still pinned by
        // the three idle handles' caches.
        assert!(
            gen1.upgrade().is_some(),
            "{name}: generation 1 freed while handles still cache it"
        );

        // One operation per idle handle refreshes its cache — after the
        // last one, generation 1 must be freed.
        for (i, h) in idle.iter_mut().enumerate() {
            assert!(gen1.upgrade().is_some(), "{name}: freed too early");
            h.find(2 + i as u64);
        }
        // Poll: a descheduled pool worker can still be dropping migration
        // 1's transient job reference (which pinned generation 1) — same
        // hazard `wait_for_strong_count` tolerates below.
        for _ in 0..100_000 {
            if gen1.upgrade().is_none() {
                break;
            }
            std::thread::yield_now();
        }
        assert!(
            gen1.upgrade().is_none(),
            "{name}: retired generation leaked after all handles refreshed"
        );

        // The current generation is referenced exactly by the versioned
        // slot and the four live handles.  A migration participant (pool
        // worker) may still be dropping its transient job reference, so
        // poll briefly before asserting.
        wait_for_strong_count(&table, 1 + 4, name);
        assert!(gen_current.upgrade().is_some(), "{name}");

        // Dropping the handles releases their references too.
        drop(driver);
        drop(idle);
        wait_for_strong_count(&table, 1, name);
    }
}

/// Poll until the current generation's strong count settles at `expected`
/// (migration participants drop their transient job references
/// asynchronously), then assert it.
fn wait_for_strong_count(table: &GrowingTable, expected: usize, name: &str) {
    for _ in 0..100_000 {
        if table.generation_strong_count() == expected {
            return;
        }
        std::thread::yield_now();
    }
    assert_eq!(table.generation_strong_count(), expected, "{name}");
}
