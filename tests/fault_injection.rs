//! Fault-injection suite: crash-tolerant migration recovery and graceful
//! degradation under allocation failure (DESIGN.md §12).
//!
//! Each test configures named failpoints (`crates/failpoints`) to kill a
//! thread at a precise point inside the migration/publication protocol or
//! to fail a specific allocation, then asserts the three robustness
//! properties the seeded schedule is meant to threaten:
//!
//! * **exactness** — every operation that returned is visible with the
//!   right value, and quiescent scans match the confirmed-operation oracle
//!   (with at most the one in-flight operation of a killed thread open);
//! * **liveness** — surviving threads finish without the dead thread, via
//!   lease stealing, INFLIGHT repair and finalize-latch recovery; every
//!   body runs under [`with_watchdog`], so a wedge aborts attributably
//!   instead of hanging CI;
//! * **no leaks** — the limbo list drains without the dead participant,
//!   and [`growt_alloc_track`] (installed as the global allocator here)
//!   shows the heap returning to baseline after the table drops.
//!
//! The failpoint registry is process-global, so every test serializes on
//! one mutex and clears the registry on entry and exit.
//!
//! Built only with `--features failpoints`; the whole file compiles away
//! otherwise.

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Duration;

use growt_baselines::FollyStyle;
use growt_core::complex::{GrowingStringTable, StringKeyTable};
use growt_core::{GrowMap, GrowStrategy, GrowingOptions, GrowingTable};
use growt_failpoints::{clear_all, configure, hits, remove, Action, ThreadExit, Trigger};
use growt_iface::{ConcurrentMap, MapHandle};
use growt_workloads::with_watchdog;

#[global_allocator]
static GLOBAL: growt_alloc_track::TrackingAlloc = growt_alloc_track::TrackingAlloc;

/// Generous liveness bound; a healthy run finishes in seconds.
const LIVENESS: Duration = Duration::from_secs(300);

/// The failpoint registry is process-global state: tests take this lock,
/// clear the registry, run under a watchdog, and clear again on the way
/// out.  A poisoned lock just means an earlier test failed — its registry
/// garbage is cleared on entry, so the poison itself is ignored.
static REGISTRY: Mutex<()> = Mutex::new(());

fn serialized<T>(label: &str, body: impl FnOnce() -> T) -> T {
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    clear_all();
    let result = with_watchdog(label, LIVENESS, body);
    clear_all();
    result
}

/// Insert `keys` (value = `3·key`), recording each *confirmed* insertion
/// (the call returned).  Returns `true` when the thread was killed by an
/// injected [`ThreadExit`]; any other panic propagates as a test failure.
fn insert_confirming(
    table: &GrowingTable,
    keys: impl Iterator<Item = u64>,
    confirmed: &mut Vec<u64>,
) -> bool {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut handle = table.handle();
        for key in keys {
            handle.insert(key, key.wrapping_mul(3));
            confirmed.push(key);
        }
    }));
    match outcome {
        Ok(()) => false,
        Err(payload) => {
            assert!(
                payload.is::<ThreadExit>(),
                "only the injected thread exit may unwind out of a writer"
            );
            true
        }
    }
}

/// String-table analogue of [`insert_confirming`] (value = index).
fn insert_strings_confirming(
    table: &GrowingStringTable,
    prefix: &str,
    count: u64,
) -> (Vec<(String, u64)>, bool) {
    let mut confirmed = Vec::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut handle = table.handle();
        for i in 0..count {
            let key = format!("{prefix}-{i}");
            handle.insert(&key, i);
            confirmed.push((key, i));
        }
    }));
    let died = match outcome {
        Ok(()) => false,
        Err(payload) => {
            assert!(payload.is::<ThreadExit>(), "unexpected panic payload");
            true
        }
    };
    (confirmed, died)
}

// ---------------------------------------------------------------------
// Thread death during migration — lease stealing and rescue
// ---------------------------------------------------------------------

/// A writer is killed at the moment it has *claimed* a migration block but
/// copied nothing.  Its unwind releases the lease, the surviving writer
/// rescues the block, and the migration — and every confirmed insert —
/// survives exactly.
#[test]
fn thread_exit_during_migration_is_rescued_by_survivors() {
    serialized("thread-exit-migration", || {
        const PER_THREAD: u64 = 10_000;
        let table = GrowingTable::new(64);
        configure("grow.block.claimed", Action::ExitThread, Trigger::Once);

        let mut results: Vec<(Vec<u64>, bool)> = Vec::new();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..2u64)
                .map(|t| {
                    let table = &table;
                    scope.spawn(move || {
                        let mut confirmed = Vec::new();
                        let keys = (0..PER_THREAD).map(move |i| 2 + t * PER_THREAD + i);
                        let died = insert_confirming(table, keys, &mut confirmed);
                        (confirmed, died)
                    })
                })
                .collect();
            for worker in workers {
                results.push(worker.join().unwrap());
            }
        });

        assert_eq!(hits("grow.block.claimed"), 1, "exactly one injected exit");
        let deaths = results.iter().filter(|(_, died)| *died).count();
        assert_eq!(deaths, 1, "the injected exit must kill exactly one writer");

        // Exactness: every confirmed insert is visible with its value.
        let mut handle = table.handle();
        for (confirmed, _) in &results {
            for &key in confirmed {
                assert_eq!(handle.find(key), Some(key.wrapping_mul(3)), "key {key}");
            }
        }
        drop(handle);

        // The quiescent scan may exceed the oracle by at most the one
        // insert that was in flight when its thread was killed.
        let confirmed_total: usize = results.iter().map(|(c, _)| c.len()).sum();
        let size = table.size_exact_quiescent();
        assert!(
            size >= confirmed_total && size <= confirmed_total + 1,
            "scan {size} vs {confirmed_total} confirmed inserts"
        );
        assert!(table.migrations_completed() >= 1, "growth never completed");
    });
}

/// The same kill under **bounded help** (`help_budget = 1`, DESIGN.md
/// §13): a drafted helper is killed at the moment it has claimed its one
/// budgeted block.  The budget must not weaken the rescue discipline —
/// the lease is released by the unwind, a survivor (or the waiters'
/// rescue pass) re-copies it, and every confirmed insert survives.
#[test]
fn budgeted_help_thread_exit_is_rescued() {
    serialized("thread-exit-budgeted-help", || {
        const PER_THREAD: u64 = 10_000;
        let table = GrowingTable::with_options(
            64,
            GrowingOptions {
                help_budget: Some(1),
                ..GrowingOptions::default()
            },
        );
        configure("grow.block.claimed", Action::ExitThread, Trigger::Once);

        let mut results: Vec<(Vec<u64>, bool)> = Vec::new();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..2u64)
                .map(|t| {
                    let table = &table;
                    scope.spawn(move || {
                        let mut confirmed = Vec::new();
                        let keys = (0..PER_THREAD).map(move |i| 2 + t * PER_THREAD + i);
                        let died = insert_confirming(table, keys, &mut confirmed);
                        (confirmed, died)
                    })
                })
                .collect();
            for worker in workers {
                results.push(worker.join().unwrap());
            }
        });

        assert_eq!(hits("grow.block.claimed"), 1, "exactly one injected exit");
        let deaths = results.iter().filter(|(_, died)| *died).count();
        assert_eq!(deaths, 1, "the injected exit must kill exactly one writer");

        let mut handle = table.handle();
        for (confirmed, _) in &results {
            for &key in confirmed {
                assert_eq!(handle.find(key), Some(key.wrapping_mul(3)), "key {key}");
            }
        }
        drop(handle);

        let confirmed_total: usize = results.iter().map(|(c, _)| c.len()).sum();
        let size = table.size_exact_quiescent();
        assert!(
            size >= confirmed_total && size <= confirmed_total + 1,
            "scan {size} vs {confirmed_total} confirmed inserts"
        );
        assert!(table.migrations_completed() >= 1, "growth never completed");
    });
}

/// The *only* thread that ever touched the table is killed mid-migration,
/// abandoning a generation with a published job and unclaimed blocks.  The
/// next thread to arrive must steal the abandoned work and complete the
/// migration on its own.
#[test]
fn abandoned_migration_is_completed_by_the_next_thread() {
    serialized("abandoned-migration", || {
        let table = GrowingTable::new(64);
        configure("grow.block.claimed", Action::ExitThread, Trigger::Once);

        let mut confirmed = Vec::new();
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut confirmed = Vec::new();
                let died = insert_confirming(&table, 2..20_000, &mut confirmed);
                assert!(died, "the sole writer must hit the injected exit");
                confirmed
            });
            confirmed = writer.join().unwrap();
        });
        assert_eq!(hits("grow.block.claimed"), 1);

        // A fresh thread inherits a table wedged mid-migration; its first
        // operations must adopt and finish the abandoned job.
        let mut handle = table.handle();
        for key in 1_000_000..1_010_000u64 {
            handle.insert(key, key);
        }
        for &key in &confirmed {
            assert_eq!(handle.find(key), Some(key.wrapping_mul(3)), "key {key}");
        }
        drop(handle);
        assert!(
            table.migrations_completed() >= 1,
            "abandoned job never finished"
        );
    });
}

// ---------------------------------------------------------------------
// Allocation failure — graceful degradation and recovery
// ---------------------------------------------------------------------

/// With every migration-target allocation failing, `try_insert` reports
/// `TryGrowError` once the current generation is truly full — while finds,
/// updates and erases keep being served from the old generation.  Lifting
/// the failure lets growth (and inserts) resume with nothing lost.
#[test]
fn word_table_degrades_and_recovers_on_allocation_failure() {
    serialized("word-alloc-failure", || {
        let table = GrowingTable::new(64);
        let mut handle = table.handle();
        configure("grow.prepare.alloc", Action::FailAlloc, Trigger::Always);

        let mut inserted = Vec::new();
        let mut saw_full = false;
        for key in 2..2_000u64 {
            match handle.try_insert(key, key.wrapping_mul(3)) {
                Ok(true) => inserted.push(key),
                Ok(false) => panic!("distinct keys cannot be duplicates"),
                Err(growt_iface::TryGrowError) => {
                    saw_full = true;
                    break;
                }
            }
        }
        assert!(saw_full, "a 64-cell table must eventually refuse inserts");
        assert!(!inserted.is_empty(), "some inserts must land before OOM");
        assert!(
            hits("grow.prepare.alloc") >= 1,
            "the allocation failpoint never triggered"
        );

        // Degraded, not dead: the old generation still serves everything
        // that does not need new memory.
        for &key in &inserted {
            assert_eq!(handle.find(key), Some(key.wrapping_mul(3)));
        }
        let probe = inserted[0];
        assert!(handle.update(probe, 5, |old, d| old + d));
        assert_eq!(handle.find(probe), Some(probe.wrapping_mul(3) + 5));
        let victim = *inserted.last().unwrap();
        assert!(handle.erase(victim));
        assert_eq!(handle.find(victim), None);

        // Recovery: memory is back, growth and inserts proceed.
        remove("grow.prepare.alloc");
        for key in 10_000..12_000u64 {
            handle.insert(key, key);
        }
        assert_eq!(handle.find(10_500), Some(10_500));
        assert_eq!(handle.find(probe), Some(probe.wrapping_mul(3) + 5));
        drop(handle);
        assert!(table.migrations_completed() >= 1, "growth never resumed");
    });
}

/// A single failed huge-page allocation must be absorbed by the infallible
/// path's backoff-and-retry loop without any caller-visible effect.
#[test]
fn transient_hugebox_failure_is_retried_transparently() {
    serialized("transient-hugebox-failure", || {
        let table = GrowingTable::new(64); // allocate before arming the failpoint
        configure("mem.hugebox.alloc", Action::FailAlloc, Trigger::Once);

        let mut handle = table.handle();
        for key in 2..20_002u64 {
            handle.insert(key, key);
        }
        for key in [2u64, 999, 10_000, 20_001] {
            assert_eq!(handle.find(key), Some(key));
        }
        drop(handle);
        assert_eq!(
            hits("mem.hugebox.alloc"),
            1,
            "the failure was never injected"
        );
        assert!(table.migrations_completed() >= 1);
        assert_eq!(table.size_exact_quiescent(), 20_000);
    });
}

/// String-table variant of the degradation test: `try_insert` errors under
/// injected OOM, in-place arithmetic keeps working, and lifting the
/// failure lets the table grow again.
#[test]
fn string_table_degrades_and_recovers_on_allocation_failure() {
    serialized("string-alloc-failure", || {
        let table = GrowingStringTable::new(64);
        let mut handle = table.handle();
        configure("string.prepare.alloc", Action::FailAlloc, Trigger::Always);

        let mut inserted = Vec::new();
        let mut saw_full = false;
        for i in 0..2_000u64 {
            let key = format!("deg-{i}");
            match handle.try_insert(&key, i) {
                Ok(true) => inserted.push((key, i)),
                Ok(false) => panic!("distinct keys cannot be duplicates"),
                Err(growt_iface::TryGrowError) => {
                    saw_full = true;
                    break;
                }
            }
        }
        assert!(saw_full, "a 64-cell table must eventually refuse inserts");
        assert!(!inserted.is_empty());

        for (key, value) in &inserted {
            assert_eq!(handle.find(key), Some(*value), "key {key}");
        }
        let (probe, value) = &inserted[0];
        assert_eq!(handle.fetch_add(probe, 5), Some(*value));
        assert_eq!(handle.find(probe), Some(value + 5));

        remove("string.prepare.alloc");
        for i in 0..2_000u64 {
            let key = format!("rec-{i}");
            assert_eq!(handle.try_insert(&key, i), Ok(true), "key {key}");
        }
        assert_eq!(handle.find("rec-1999"), Some(1_999));
        assert_eq!(handle.find(probe), Some(value + 5));
        drop(handle);
        assert!(table.migrations_completed() >= 1, "growth never resumed");
    });
}

/// With every pool-worker spawn failing, a pool-strategy table starts with
/// zero migration workers — and must still complete every migration,
/// because threads waiting on a replacement escalate to rescue duty.
#[test]
fn pool_spawn_failure_degrades_to_waiter_rescue() {
    serialized("pool-spawn-failure", || {
        configure("pool.spawn", Action::FailAlloc, Trigger::Always);
        let options = GrowingOptions {
            strategy: GrowStrategy::Pool,
            threads_hint: 3,
            ..GrowingOptions::default()
        };
        let table = GrowingTable::with_options(64, options);
        // Worker spawning stops at the first injected failure.
        assert_eq!(hits("pool.spawn"), 1, "worker spawning was not suppressed");
        remove("pool.spawn");

        const PER_THREAD: u64 = 8_000;
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let table = &table;
                scope.spawn(move || {
                    let mut handle = table.handle();
                    for i in 0..PER_THREAD {
                        let key = 2 + t * PER_THREAD + i;
                        handle.insert(key, key);
                    }
                });
            }
        });

        let mut handle = table.handle();
        for key in (2..2 + 2 * PER_THREAD).step_by(997) {
            assert_eq!(handle.find(key), Some(key));
        }
        drop(handle);
        assert_eq!(table.size_exact_quiescent(), 2 * PER_THREAD as usize);
        assert!(
            table.migrations_completed() >= 1,
            "no migration ever completed"
        );
    });
}

// ---------------------------------------------------------------------
// Publication-window death — INFLIGHT repair
// ---------------------------------------------------------------------

/// A string-table inserter dies between claiming a cell (INFLIGHT) and
/// publishing its key.  Probes that reach the abandoned claim must repair
/// it to a tombstone after bounded spinning instead of waiting forever,
/// and the key — never published — must be insertable again.
#[test]
fn abandoned_string_inflight_claim_is_repaired() {
    serialized("string-inflight-repair", || {
        let table = StringKeyTable::with_capacity(1_024);
        configure("string.inflight", Action::ExitThread, Trigger::Once);

        std::thread::scope(|scope| {
            scope.spawn(|| {
                let outcome = catch_unwind(AssertUnwindSafe(|| table.insert("victim", 7)));
                let payload = outcome.expect_err("the insert must die mid-publication");
                assert!(payload.is::<ThreadExit>());
            });
        });
        assert_eq!(hits("string.inflight"), 1);

        // The victim's claim is abandoned; these probes must repair it.
        assert!(table.insert("victim", 9), "the key was never published");
        assert_eq!(table.find("victim"), Some(9));
        assert!(table.insert("bystander", 1));
        assert_eq!(table.find("bystander"), Some(1));
    });
}

/// Same scenario against the folly-style baseline's publication window.
#[test]
fn abandoned_baseline_inflight_claim_is_repaired() {
    serialized("baseline-inflight-repair", || {
        let table = FollyStyle::with_capacity(256);
        configure("baseline.inflight", Action::ExitThread, Trigger::Once);

        std::thread::scope(|scope| {
            scope.spawn(|| {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut handle = table.handle();
                    handle.insert(42, 7)
                }));
                let payload = outcome.expect_err("the insert must die mid-publication");
                assert!(payload.is::<ThreadExit>());
            });
        });
        assert_eq!(hits("baseline.inflight"), 1);

        let mut handle = table.handle();
        assert!(handle.insert(42, 9), "the key was never published");
        assert_eq!(handle.find(42), Some(9));
        assert!(handle.insert(43, 1));
        assert_eq!(handle.find(43), Some(1));
    });
}

// ---------------------------------------------------------------------
// Reclamation — limbo drains without the dead participant, heap returns
// to baseline
// ---------------------------------------------------------------------

/// A thread dies immediately after retiring an erased key's allocation.
/// Its handle unregisters from the QSBR domain during unwinding, so the
/// surviving participant alone must be able to drain the limbo list.
#[test]
fn qsbr_limbo_drains_after_eraser_thread_exit() {
    serialized("qsbr-drain-after-exit", || {
        let table = GrowingStringTable::new(256);
        {
            let mut handle = table.handle();
            for i in 0..100u64 {
                assert!(handle.insert(&format!("k-{i}"), i));
            }
        }
        configure("string.erase.retired", Action::ExitThread, Trigger::Once);

        std::thread::scope(|scope| {
            scope.spawn(|| {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut handle = table.handle();
                    handle.erase("k-3"); // dies right after the retire
                    handle.erase("k-4"); // never reached
                }));
                let payload = outcome.expect_err("the first erase must exit the thread");
                assert!(payload.is::<ThreadExit>());
            });
        });
        assert_eq!(hits("string.erase.retired"), 1);

        let mut handle = table.handle();
        for _ in 0..256 {
            handle.quiesce();
            if table.stats().pending_reclamation == 0 {
                break;
            }
        }
        assert_eq!(
            table.stats().pending_reclamation,
            0,
            "the dead participant must not block reclamation"
        );
        // The erase that triggered the exit had already taken effect; the
        // one after it never ran.
        assert_eq!(handle.find("k-3"), None);
        assert_eq!(handle.find("k-4"), Some(4));
    });
}

/// End-to-end leak check: a writer killed mid-migration, erases, QSBR
/// draining, then the table drops — and the tracked heap returns to its
/// baseline.  Catches leaked generations, leaked key allocations and
/// leaked migration jobs alike.
#[test]
fn string_migration_thread_exit_leaks_nothing() {
    serialized("string-thread-exit-leak", || {
        // Warm up one-time lazy allocations (failpoint registry map,
        // thread bookkeeping) so they don't pollute the accounting below.
        {
            let warm = GrowingStringTable::new(64);
            let mut handle = warm.handle();
            handle.insert("warmup", 1);
            configure("warmup.noop", Action::Yield(0), Trigger::Once);
            clear_all();
        }

        let baseline = growt_alloc_track::current_bytes();
        {
            const PER_THREAD: u64 = 6_000;
            let table = GrowingStringTable::new(64);
            configure("string.block.claimed", Action::ExitThread, Trigger::Once);

            let mut results = Vec::new();
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..2u64)
                    .map(|t| {
                        let table = &table;
                        scope.spawn(move || {
                            insert_strings_confirming(table, &format!("w{t}"), PER_THREAD)
                        })
                    })
                    .collect();
                for worker in workers {
                    results.push(worker.join().unwrap());
                }
            });
            assert_eq!(hits("string.block.claimed"), 1);
            assert_eq!(
                results.iter().filter(|(_, died)| *died).count(),
                1,
                "the injected exit must kill exactly one writer"
            );

            // Exactness for everything confirmed, then erase half of it
            // and drain the limbo without the dead participant.
            let mut handle = table.handle();
            for (confirmed, _) in &results {
                for (key, value) in confirmed {
                    assert_eq!(handle.find(key), Some(*value), "key {key}");
                }
            }
            for (confirmed, _) in &results {
                for (key, _) in confirmed.iter().step_by(2) {
                    assert!(handle.erase(key), "key {key}");
                }
            }
            for _ in 0..256 {
                handle.quiesce();
                if table.stats().pending_reclamation == 0 {
                    break;
                }
            }
            assert_eq!(table.stats().pending_reclamation, 0);
            drop(handle);
            assert!(table.migrations_completed() >= 1);
        }
        let after = growt_alloc_track::current_bytes();
        assert!(
            after <= baseline + 128 * 1024,
            "leak suspected: {baseline} bytes before, {after} after \
             (slack 128 KiB; a leaked generation or key batch is far larger)"
        );
    });
}

/// Generic-map analogue of the migration kill schedules: a writer driving
/// a `GrowMap<String, [u64; 4]>` (boxed keys *and* boxed values) is killed
/// the moment it has claimed a migration block.  The shared coordinator
/// (DESIGN.md §14 runs the same §12 protocol for every table family) must
/// let the survivor steal the lease and finish; every confirmed insert
/// stays visible, the QSBR limbo drains without the dead participant, and
/// the allocator returns to baseline after the map drops.
#[test]
fn generic_migration_thread_exit_leaks_nothing() {
    serialized("generic-thread-exit-leak", || {
        // Warm up one-time lazy allocations so they don't pollute the
        // accounting below.
        {
            let warm: GrowMap<String, [u64; 4]> = GrowMap::new(64);
            let mut handle = warm.handle();
            handle.insert(&"warmup".to_string(), &[1, 0, 0, 0]);
            configure("warmup.noop", Action::Yield(0), Trigger::Once);
            clear_all();
        }

        let baseline = growt_alloc_track::current_bytes();
        {
            const PER_THREAD: u64 = 6_000;
            let map: GrowMap<String, [u64; 4]> = GrowMap::new(64);
            configure("generic.block.claimed", Action::ExitThread, Trigger::Once);

            let mut results = Vec::new();
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..2u64)
                    .map(|t| {
                        let map = &map;
                        scope.spawn(move || {
                            let mut confirmed = Vec::new();
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                let mut handle = map.handle();
                                for i in 0..PER_THREAD {
                                    let key = format!("g{t}-{i}");
                                    handle.insert(&key, &[i, t, 0, 0]);
                                    confirmed.push((key, [i, t, 0, 0]));
                                }
                            }));
                            let died = match outcome {
                                Ok(()) => false,
                                Err(payload) => {
                                    assert!(payload.is::<ThreadExit>(), "unexpected panic payload");
                                    true
                                }
                            };
                            (confirmed, died)
                        })
                    })
                    .collect();
                for worker in workers {
                    results.push(worker.join().unwrap());
                }
            });
            assert_eq!(hits("generic.block.claimed"), 1);
            assert_eq!(
                results.iter().filter(|(_, died)| *died).count(),
                1,
                "the injected exit must kill exactly one writer"
            );

            // Exactness for everything confirmed, then erase half of it
            // and drain the limbo without the dead participant.
            let mut handle = map.handle();
            for (confirmed, _) in &results {
                for (key, value) in confirmed {
                    assert_eq!(handle.find(key), Some(*value), "key {key}");
                }
            }
            for (confirmed, _) in &results {
                for (key, _) in confirmed.iter().step_by(2) {
                    assert!(handle.erase(key), "key {key}");
                }
            }
            for _ in 0..256 {
                handle.quiesce();
                if map.pending_reclamation() == 0 {
                    break;
                }
            }
            assert_eq!(map.pending_reclamation(), 0);
            drop(handle);
            assert!(map.migrations_completed() >= 1);
        }
        let after = growt_alloc_track::current_bytes();
        assert!(
            after <= baseline + 128 * 1024,
            "leak suspected: {baseline} bytes before, {after} after \
             (slack 128 KiB; a leaked generation or key/value box is far larger)"
        );
    });
}
