//! Integration stress tests of the growing machinery across crates: heavy
//! concurrent growth, deletion-driven cleanup migrations, and the mixed /
//! deletion workloads of the paper driven through the generic drivers.

use std::time::Duration;

use growt_repro::prelude::*;
use growt_workloads::{deletion_workload, mixed_workload, uniform_distinct_keys, with_watchdog};

/// Generous liveness bound for one stress test: a healthy run finishes in
/// seconds, a wedged migration protocol would otherwise hang forever.
const LIVENESS: Duration = Duration::from_secs(300);

#[test]
fn growing_from_tiny_capacity_under_contention() {
    fn run<M: ConcurrentMap>() {
        with_watchdog(M::table_name(), LIVENESS, || {
            let keys = uniform_distinct_keys(60_000, 31);
            let table = M::with_capacity(64); // forces many migrations
            let m = insert_driver(&table, &keys, 4);
            assert_eq!(m.aux as usize, keys.len(), "{}", M::table_name());
            let m = find_driver(&table, &keys, 4);
            assert_eq!(m.aux as usize, keys.len(), "{}", M::table_name());
        });
    }
    run::<UaGrow>();
    run::<UsGrow>();
    run::<PaGrow>();
    run::<PsGrow>();
}

#[test]
fn panicking_update_closure_does_not_wedge_synchronized_growth() {
    // An update closure is user code; a panic inside it unwinds straight
    // through the handle operation while the handle's busy flag is raised.
    // The operation's guard must lower the flag on the way out — otherwise
    // the next synchronized (usGrow/psGrow) migration waits on this handle
    // forever and every writer wedges behind it.
    with_watchdog("panicking-up-closure", LIVENESS, || {
        let table = UsGrow::with_capacity(128);
        let mut victim = table.handle();
        victim.insert(2, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            victim.insert_or_update(2, 1, |_, _| panic!("injected user-closure panic"));
        }));
        assert!(result.is_err(), "closure must have panicked");
        // Keep `victim` registered (alive, idle) and force migrations from
        // another handle: growth must complete although `victim` never
        // performs another operation.
        let mut other = table.handle();
        for key in 3..30_000u64 {
            other.insert(key, key);
        }
        assert!(table.inner().migrations_completed() > 0, "never migrated");
        assert_eq!(other.find(2), Some(1), "panicked update must not apply");
        drop(victim);
    });
}

#[test]
fn deletion_workload_reclaims_memory() {
    // The sliding-window workload of Fig. 6: the table must stay at (about)
    // its window size even though it sees far more insertions than the
    // window.  A deletion may fail if the thread that owns the operation
    // block containing its matching insertion is stalled helping a
    // migration (execution skew); such keys are simply deleted "late", so
    // the invariant checked here is conservation: every inserted key is
    // either still live or was successfully deleted — nothing is lost.
    with_watchdog("deletion-workload", LIVENESS, || {
        let window = 40_000;
        let steps = 80_000;
        let wl = deletion_workload(steps, window, 77);
        let table = UaGrow::with_capacity(window + window / 2);
        prefill(&table, &wl.prefill);
        let m = deletion_driver(&table, &wl, 2);
        let deleted = m.aux as usize;
        let failed = steps - deleted;
        assert!(
            failed <= steps / 20,
            "too many deletions missed their target ({failed} of {steps})"
        );
        let mut handle = table.handle();
        handle.quiesce();
        drop(handle);
        // Conservation: prefill + steps insertions, `deleted` removals.
        let size = table.inner().size_exact_quiescent();
        assert_eq!(size, window + steps - deleted, "elements were lost");
        // Capacity must stay bounded by a small multiple of the window size
        // (tombstone cleanup happened), not by the total number of insertions.
        assert!(
            table.inner().current_capacity() <= 4 * (window + window / 2).next_power_of_two(),
            "capacity {} indicates tombstones were never cleaned",
            table.inner().current_capacity()
        );
        assert!(table.inner().migrations_completed() > 0);
    });
}

#[test]
fn mixed_workload_runs_on_growing_tables() {
    let threads = 4;
    let wl = mixed_workload(80_000, 30, 8192 * threads, 8192 * threads, 3);
    for run in 0..2 {
        let table = UaGrow::with_capacity(if run == 0 { 128 } else { 80_000 });
        prefill(&table, &wl.prefill);
        let m = mixed_driver(&table, &wl, threads);
        let finds = wl
            .ops
            .iter()
            .filter(|o| matches!(o, growt_workloads::MixedOp::Find(_)))
            .count();
        assert!(
            m.aux as usize >= finds - finds / 50,
            "too many failed finds: {} of {finds}",
            m.aux
        );
    }
}

#[test]
fn handles_can_be_created_and_dropped_concurrently() {
    let table = UsGrow::with_capacity(1024);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let table = &table;
            scope.spawn(move || {
                for round in 0..50u64 {
                    let mut handle = table.handle();
                    for i in 0..50u64 {
                        let key = 2 + t * 10_000 + round * 100 + i;
                        handle.insert(key, key);
                        assert_eq!(handle.find(key), Some(key));
                    }
                    // handle dropped here; registration must stay consistent
                }
            });
        }
    });
    let mut handle = table.handle();
    assert!(handle.find(2).is_some());
}

#[test]
fn full_keyspace_wrapper_accepts_all_keys_concurrently() {
    use growt_core::keyspace::FullKeyspaceTable;
    let table = FullKeyspaceTable::new(256);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let table = &table;
            scope.spawn(move || {
                let mut handle = table.handle();
                for i in 0..10_000u64 {
                    // Cover low keys, high keys and the sentinels.
                    let key = match i % 3 {
                        0 => t * 1_000_000 + i,
                        1 => (1 << 63) | (t * 1_000_000 + i),
                        _ => u64::MAX - (t * 1_000_000 + i),
                    };
                    handle.insert(key, i);
                    assert_eq!(handle.find(key), Some(i), "key {key:#x}");
                }
            });
        }
    });
}

#[test]
fn string_key_table_concurrent_wordcount() {
    use growt_core::complex::StringKeyTable;
    let table = StringKeyTable::with_capacity(10_000);
    let words: Vec<String> = (0..500).map(|i| format!("word-{i}")).collect();
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let table = &table;
            let words = &words;
            scope.spawn(move || {
                for i in 0..20_000usize {
                    let word = &words[(i * (t + 1)) % words.len()];
                    table.insert_or_add(word, 1);
                }
            });
        }
    });
    let total: u64 = words.iter().map(|w| table.find(w).unwrap_or(0)).sum();
    assert_eq!(total, 4 * 20_000);
}

#[test]
fn bulk_build_and_bulk_insert() {
    use growt_core::bulk::{build_from, bulk_insert};
    let elements: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i * 13 + 17, i)).collect();
    let bounded = build_from(&elements, 4);
    for &(k, v) in &elements {
        assert_eq!(bounded.find(k), Some(v));
    }

    let growing = growt_core::GrowingTable::new(64);
    bulk_insert(&growing, &elements, 4);
    let mut handle = growing.handle();
    for &(k, v) in &elements {
        assert_eq!(handle.find(k), Some(v));
    }
}
