//! Offline stand-in for the
//! [`crossbeam-utils`](https://crates.io/crates/crossbeam-utils) crate.
//! Only [`CachePadded`] is provided — the one item this workspace uses.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line (128 bytes: two
/// 64-byte lines, protecting against adjacent-line prefetching exactly like
/// the real crate does on x86-64).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Return the inner value, consuming the padding wrapper.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_to_cache_line() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
