//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.  It implements the subset of the API used by
//! `crates/bench/benches/figures.rs` — benchmark groups, `BenchmarkId`,
//! element throughput and `Bencher::iter` — with a plain mean-of-samples
//! measurement loop instead of criterion's statistical machinery, so that
//! `cargo bench` works without network access.  The TSV-style output keeps
//! one line per benchmark: `group/id<TAB>mean seconds<TAB>Melem/s`.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured section processes this many elements per iteration.
    Elements(u64),
    /// The measured section processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing helper handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run `routine` repeatedly (one warm-up run plus `sample_size` timed
    /// runs) and record the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

/// A group of related benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has a fixed single warm-up
    /// run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times exactly
    /// `sample_size` runs.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate the group with a per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("{:.3}", n as f64 / mean / 1e6)
            }
            _ => "-".to_string(),
        };
        println!("{}/{}\t{:.6}\t{}", self.name, id, mean, rate);
        let _ = &self.criterion;
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a new benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("# group {name}\t(mean seconds\tMelem/s)");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string())
            .bench_function(BenchmarkId::from_parameter("bench"), f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| runs += 1)
        });
        group.finish();
        // One warm-up run plus sample_size timed runs.
        assert_eq!(runs, 4);
    }
}
