//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, wrapping `std::sync` primitives behind parking_lot's non-poisoning
//! API.  Only the subset used by this workspace is provided: [`Mutex`],
//! [`RwLock`], [`Condvar`] and their guards.
//!
//! Poisoning is deliberately swallowed (parking_lot has no poisoning): a
//! panic while holding a lock leaves the protected data in whatever state
//! the panicking thread produced, exactly like the real crate.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual exclusion primitive (parking_lot-compatible wrapper around
/// [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Access the protected value through exclusive borrow (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

/// A reader–writer lock (parking_lot-compatible wrapper around
/// [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Access the protected value through exclusive borrow (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot signature:
/// `wait` takes the guard by `&mut`).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guarded mutex and wait for a notification;
    /// the mutex is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`], but with a timeout.  Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        result.timed_out()
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        waiter.join().unwrap();
    }
}
