//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! It implements the subset of the API used by this workspace's test suite:
//! the [`Strategy`] trait with `prop_map`, range / tuple / `any` strategies,
//! `prop::collection::{vec, hash_set}`, the [`prop_oneof!`] union macro and
//! the [`proptest!`] test-definition macro with `prop_assert!` /
//! `prop_assert_eq!`.  Generation is deterministic per test (seeded from the
//! test name) and there is **no shrinking** — a failing case reports its
//! seed and case number instead.

pub mod strategy;

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `hash_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.next_in_usize_range(&self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from
    /// `size` (the resulting set may be smaller if the element universe is
    /// nearly exhausted).
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let len = rng.next_in_usize_range(&self.size);
            let mut set = HashSet::with_capacity(len);
            let mut attempts = 0usize;
            while set.len() < len && attempts < len.saturating_mul(8) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `HashSet` strategy: each element from `element`, size in `size`.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }
}

pub mod test_runner {
    //! Configuration, error type and the deterministic RNG.

    use std::fmt;
    use std::ops::Range;

    /// Per-proptest configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// The name the real crate exports in its prelude.
    pub use Config as ProptestConfig;

    /// Failure of one generated test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The input was rejected (not used by the shim's strategies).
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Construct a rejection with the given message.
        pub fn reject<S: Into<String>>(message: S) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator (splitmix64) used for all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create a generator from an explicit seed.
        pub fn seeded(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            // Rejection-free modulo is fine for test generation purposes.
            self.next_u64() % bound.max(1)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform value in a half-open `usize` range.
        pub fn next_in_usize_range(&mut self, range: &Range<usize>) -> usize {
            let span = range.end.saturating_sub(range.start).max(1);
            range.start + self.next_below(span as u64) as usize
        }
    }

    /// Stable seed derived from a test name (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config, ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Namespace mirror of the real crate's `prop::` re-exports.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Union of equally weighted strategies: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Fallible assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fallible inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::seeded(
                    $crate::test_runner::seed_from_name(stringify!($name)),
                );
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg =
                                    $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(err) => panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            err
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(1u64..10).prop_map(Op::A), (0u64..1).prop_map(|_| Op::B),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u64..50, y in 0.0f64..2.0, n in 1usize..4) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.0..2.0).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(op(), 1..20),
                             s in prop::collection::hash_set(0u64..1000, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(s.len() < 20);
            for item in &v {
                if let Op::A(x) = item {
                    prop_assert!(*x >= 1 && *x < 10);
                }
            }
        }

        #[test]
        fn tuples_and_any(pair in (2u64..9, any::<bool>())) {
            prop_assert!(pair.0 >= 2 && pair.0 < 9);
            prop_assert_eq!(pair.1, pair.1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::seeded(crate::test_runner::seed_from_name("t"));
        let mut b = TestRng::seeded(crate::test_runner::seed_from_name("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
