//! The [`Strategy`] trait and combinators (map, union, tuples, ranges).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Equally weighted union of boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span.wrapping_add(1).max(1)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
